"""SCAR scheduler facade (Fig. 4): the four engines wired together.

``SCARScheduler.schedule(scenario)`` runs the full multi-tiered search:

1. **MCM-Reconfig** -- offline expected layer costs (Eq. 1), periodic time
   windows, greedy layer packing (Algorithm 1, or the uniform baseline).
2. **PROV** -- per-window node allocation (Eq. 2 uniform rule, or
   exhaustive composition enumeration).
3. **SEG** -- top-k segmentation candidates per model (Heuristic 1), with
   the optional Heuristic-2 node-allocation constraint.
4. **SCHED** -- scheduling-tree placement search with full cost-model
   evaluation (or the evolutionary variant for large MCMs).

The result carries the chosen schedule, its metrics and the whole
evaluated population, which the Pareto/top-candidate figures consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.budget import SearchBudget
from repro.core.evolutionary import EvolutionarySegSearch, GAConfig
from repro.core.metrics import ScheduleEvaluator, ScheduleMetrics
from repro.core.packing import (
    PackingPlan,
    WindowAssignment,
    expected_layer_energies,
    expected_layer_latencies,
    greedy_pack,
    uniform_pack,
)
from repro.core.provisioner import exhaustive_allocations, uniform_allocation
from repro.core.schedule import Schedule
from repro.core.scoring import Objective, edp_objective
from repro.core.sched_engine import WindowCandidate, search_window
from repro.core.segmentation import RankedSegmentation, rank_segmentations
from repro.dataflow.database import LayerCostDatabase
from repro.errors import SearchError
from repro.mcm.package import MCM
from repro.workloads.model import Scenario


@dataclass(frozen=True)
class SCARResult:
    """Everything a scheduling run produced."""

    schedule: Schedule
    metrics: ScheduleMetrics
    plan: PackingPlan
    window_candidates: tuple[tuple[WindowCandidate, ...], ...]
    num_evaluated: int

    def candidate_points(self) -> list[tuple[float, float]]:
        """(latency_s, energy_j) of assembled candidate schedules.

        Candidate schedules are formed by combining same-rank window
        candidates across windows (rank 0 = the chosen schedule); used for
        the Pareto scatter figures.
        """
        if not self.window_candidates:
            return [(self.metrics.latency_s, self.metrics.energy_j)]
        ranked_per_window = [
            sorted(cands, key=lambda c: c.score)
            for cands in self.window_candidates
        ]
        depth = min(len(r) for r in ranked_per_window)
        points = []
        for rank in range(depth):
            latency = sum(r[rank].metrics.latency_s
                          for r in ranked_per_window)
            energy = sum(r[rank].metrics.energy_j
                         for r in ranked_per_window)
            points.append((latency, energy))
        return points


class SCARScheduler:
    """The SCAR multi-model scheduler for one MCM configuration.

    Parameters mirror the paper's hyperparameters:

    ``nsplits``              time-window split count (default 4 -> 5 windows).
    ``objective``            Latency / Energy / EDP search (default EDP).
    ``budget``               search caps (see :class:`SearchBudget`).
    ``packing``              ``"greedy"`` (Algorithm 1) or ``"uniform"``.
    ``provisioning``         ``"uniform"`` (Eq. 2) or ``"exhaustive"``.
    ``max_nodes_per_model``  Heuristic-2 node-allocation constraint.
    ``seg_search``           ``"enumerative"`` or ``"evolutionary"``.
    """

    def __init__(self, mcm: MCM, *, objective: Objective | None = None,
                 nsplits: int = 4, budget: SearchBudget | None = None,
                 database: LayerCostDatabase | None = None,
                 packing: str = "greedy", provisioning: str = "uniform",
                 max_nodes_per_model: int | None = None,
                 seg_search: str = "enumerative",
                 ga_config: GAConfig | None = None,
                 prov_limit: int = 64) -> None:
        if packing not in ("greedy", "uniform"):
            raise SearchError(f"unknown packing mode {packing!r}")
        if provisioning not in ("uniform", "exhaustive"):
            raise SearchError(f"unknown provisioning mode {provisioning!r}")
        if seg_search not in ("enumerative", "evolutionary"):
            raise SearchError(f"unknown seg_search mode {seg_search!r}")
        self.mcm = mcm
        self.objective = objective or edp_objective()
        self.nsplits = nsplits
        self.budget = budget or SearchBudget()
        self.database = database or LayerCostDatabase(clock_hz=mcm.clock_hz)
        self.packing = packing
        self.provisioning = provisioning
        self.max_nodes_per_model = max_nodes_per_model
        self.seg_search = seg_search
        self.ga_config = ga_config
        self.prov_limit = prov_limit

    # -- public API ------------------------------------------------------------

    def schedule(self, scenario: Scenario) -> SCARResult:
        """Run the full SCAR search on ``scenario``."""
        evaluator = ScheduleEvaluator(scenario, self.mcm, self.database)
        expected_lat = expected_layer_latencies(scenario, self.mcm,
                                                self.database)
        expected_en = expected_layer_energies(scenario, self.mcm,
                                              self.database)
        if self.packing == "greedy":
            plan = greedy_pack(scenario, expected_lat, self.nsplits)
        else:
            plan = uniform_pack(scenario, self.nsplits)

        best_windows: list[WindowCandidate] = []
        all_candidates: list[tuple[WindowCandidate, ...]] = []
        num_evaluated = 0
        for window in plan.windows:
            collected: list[WindowCandidate] = []
            best = self._search_one_window(
                scenario, window, expected_lat, expected_en, evaluator,
                collected)
            best_windows.append(best)
            all_candidates.append(tuple(collected))
            num_evaluated += len(collected)

        schedule = Schedule(windows=tuple(
            candidate.window for candidate in best_windows))
        metrics = evaluator.evaluate(schedule)
        return SCARResult(schedule=schedule, metrics=metrics, plan=plan,
                          window_candidates=tuple(all_candidates),
                          num_evaluated=num_evaluated)

    # -- engine plumbing ----------------------------------------------------------

    def _window_shares(self, window: WindowAssignment,
                       expected_lat: list[list[float]],
                       expected_en: list[list[float]]) -> dict[int, float]:
        """E(P_i) per model for the PROV rule, under the search objective.

        The latency-bound constraint (if any) applies to schedules, not to
        provisioning shares, so it is stripped here -- otherwise a heavy
        model's expected cost could score ``inf`` and break Eq. (2).
        """
        from dataclasses import replace
        unbounded = replace(self.objective, latency_bound_s=None)
        shares: dict[int, float] = {}
        for model, start, stop in window.ranges:
            lat = sum(expected_lat[model][start:stop])
            energy = sum(expected_en[model][start:stop])
            shares[model] = unbounded.score_values(lat, energy)
        return shares

    def _allocations(self, window: WindowAssignment,
                     shares: dict[int, float]) -> list[dict[int, int]]:
        if self.provisioning == "uniform":
            return [uniform_allocation(window, shares,
                                       self.mcm.num_chiplets,
                                       self.max_nodes_per_model)]
        return list(exhaustive_allocations(window, self.mcm.num_chiplets,
                                           self.max_nodes_per_model,
                                           limit=self.prov_limit))

    def _rank_for_window(self, scenario: Scenario, window: WindowAssignment,
                         alloc: dict[int, int],
                         expected_lat: list[list[float]]
                         ) -> dict[int, list[RankedSegmentation]]:
        ranked: dict[int, list[RankedSegmentation]] = {}
        for model, start, stop in window.ranges:
            instance = scenario[model]
            boundary = [float(instance.layer(i).output_bytes)
                        for i in range(start, stop)]
            ranked[model] = rank_segmentations(
                start, stop, alloc[model],
                expected_lat[model][start:stop], instance.batch,
                boundary, self.mcm.nop_gbps, self.budget)
        return ranked

    def _search_one_window(self, scenario: Scenario,
                           window: WindowAssignment,
                           expected_lat: list[list[float]],
                           expected_en: list[list[float]],
                           evaluator: ScheduleEvaluator,
                           collected: list[WindowCandidate]
                           ) -> WindowCandidate:
        shares = self._window_shares(window, expected_lat, expected_en)
        best: WindowCandidate | None = None
        for alloc in self._allocations(window, shares):
            ranked = self._rank_for_window(scenario, window, alloc,
                                           expected_lat)
            if self.seg_search == "evolutionary":
                seeds = {m: [r.cuts for r in ranked[m]] for m in ranked}
                search = EvolutionarySegSearch(
                    window, alloc, evaluator, self.objective, self.budget,
                    config=self.ga_config, seeds=seeds)
                candidate = search.run()
                collected.extend(search.evaluated)
            else:
                candidate = search_window(window, ranked, evaluator,
                                          self.objective, self.budget,
                                          collect=collected)
            if best is None or candidate.score < best.score:
                best = candidate
        assert best is not None
        return best
