"""SCAR scheduler facade (Fig. 4): the four engines wired together.

``SCARScheduler.schedule(scenario)`` runs the full multi-tiered search:

1. **MCM-Reconfig** -- offline expected layer costs (Eq. 1), periodic time
   windows, greedy layer packing (Algorithm 1, or the uniform baseline).
2. **PROV** -- per-window node allocation (Eq. 2 uniform rule, or
   exhaustive composition enumeration).
3. **SEG** -- top-k segmentation candidates per model (Heuristic 1), with
   the optional Heuristic-2 node-allocation constraint.
4. **SCHED** -- scheduling-tree placement search with full cost-model
   evaluation (or the evolutionary variant for large MCMs).

The result carries the chosen schedule, its metrics and the whole
evaluated population, which the Pareto/top-candidate figures consume.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.core.budget import SearchBudget
from repro.core.evalcache import EvalCache
from repro.core.evolutionary import EvolutionarySegSearch, GAConfig
from repro.core.metrics import ScheduleEvaluator, ScheduleMetrics
from repro.core.packing import (
    PackingPlan,
    WindowAssignment,
    expected_layer_energies,
    expected_layer_latencies,
    greedy_pack,
    uniform_pack,
)
from repro.core.provisioner import exhaustive_allocations, uniform_allocation
from repro.core.schedule import Schedule
from repro.core.scoring import Objective, edp_objective
from repro.core.sched_engine import WindowCandidate, search_window
from repro.core.segmentation import RankedSegmentation, rank_segmentations
from repro.dataflow.database import LayerCostDatabase
from repro.errors import SearchError
from repro.mcm.package import MCM
from repro.perf import CacheStats, PerfReport, log_report, merge_stats
from repro.workloads.model import Scenario


def assemble_candidate_points(window_candidates, *, fallback, score,
                              point) -> list[tuple[float, float]]:
    """(latency_s, energy_j) of assembled candidate schedules.

    Candidate schedules are formed by combining same-rank window
    candidates across windows after ranking each window by ``score``
    (rank 0 = the chosen schedule); ``point`` extracts one candidate's
    (latency_s, energy_j) and ``fallback`` is the single schedule point
    used when no population was collected.  Shared by
    :meth:`SCARResult.candidate_points` and the wire-side
    ``repro.api.ScheduleResult.candidate_points`` so the Pareto
    construction cannot diverge between the two.
    """
    if not window_candidates:
        return [fallback]
    ranked_per_window = [sorted(cands, key=score)
                         for cands in window_candidates]
    depth = min(len(r) for r in ranked_per_window)
    points = []
    for rank in range(depth):
        latency = sum(point(r[rank])[0] for r in ranked_per_window)
        energy = sum(point(r[rank])[1] for r in ranked_per_window)
        points.append((latency, energy))
    return points


@dataclass(frozen=True)
class SCARResult:
    """Everything a scheduling run produced."""

    schedule: Schedule
    metrics: ScheduleMetrics
    plan: PackingPlan
    window_candidates: tuple[tuple[WindowCandidate, ...], ...]
    num_evaluated: int
    perf: PerfReport | None = None

    def candidate_points(self) -> list[tuple[float, float]]:
        """See :func:`assemble_candidate_points` (Pareto figure input)."""
        return assemble_candidate_points(
            self.window_candidates,
            fallback=(self.metrics.latency_s, self.metrics.energy_j),
            score=lambda c: c.score,
            point=lambda c: (c.metrics.latency_s, c.metrics.energy_j))


class SCARScheduler:
    """The SCAR multi-model scheduler for one MCM configuration.

    Parameters mirror the paper's hyperparameters:

    ``nsplits``              time-window split count (default 4 -> 5 windows).
    ``objective``            Latency / Energy / EDP search (default EDP).
    ``budget``               search caps (see :class:`SearchBudget`).
    ``packing``              ``"greedy"`` (Algorithm 1) or ``"uniform"``.
    ``provisioning``         ``"uniform"`` (Eq. 2) or ``"exhaustive"``.
    ``max_nodes_per_model``  Heuristic-2 node-allocation constraint.
    ``seg_search``           ``"enumerative"`` or ``"evolutionary"``.
    ``jobs``                 worker processes for the window search
                             (1 = serial; results are bit-identical
                             either way, see :meth:`schedule`).
    ``use_cache``            enable the segment-cost memo (results are
                             bit-identical with it off; it only trades
                             memory for speed).
    """

    def __init__(self, mcm: MCM, *, objective: Objective | None = None,
                 nsplits: int = 4, budget: SearchBudget | None = None,
                 database: LayerCostDatabase | None = None,
                 packing: str = "greedy", provisioning: str = "uniform",
                 max_nodes_per_model: int | None = None,
                 seg_search: str = "enumerative",
                 ga_config: GAConfig | None = None,
                 prov_limit: int = 64, jobs: int = 1,
                 use_cache: bool = True) -> None:
        if packing not in ("greedy", "uniform"):
            raise SearchError(f"unknown packing mode {packing!r}")
        if provisioning not in ("uniform", "exhaustive"):
            raise SearchError(f"unknown provisioning mode {provisioning!r}")
        if seg_search not in ("enumerative", "evolutionary"):
            raise SearchError(f"unknown seg_search mode {seg_search!r}")
        if jobs < 1:
            raise SearchError(f"jobs must be >= 1, got {jobs}")
        self.mcm = mcm
        self.objective = objective or edp_objective()
        self.nsplits = nsplits
        self.budget = budget or SearchBudget()
        self.database = database or LayerCostDatabase(clock_hz=mcm.clock_hz)
        self.packing = packing
        self.provisioning = provisioning
        self.max_nodes_per_model = max_nodes_per_model
        self.seg_search = seg_search
        self.ga_config = ga_config
        self.prov_limit = prov_limit
        self.jobs = jobs
        self.use_cache = use_cache

    # -- public API ------------------------------------------------------------

    def schedule(self, scenario: Scenario) -> SCARResult:
        """Run the full SCAR search on ``scenario``.

        The search is decomposed into independent (window, provisioning
        allocation) tasks.  With ``jobs > 1`` the tasks fan out over a
        process pool; each task is internally deterministic (seeded by
        its window index) and the merge orders outcomes by
        ``(window_index, alloc_index)`` and picks per-window winners by
        ``(score, alloc_index)`` -- exactly the serial iteration order --
        so parallel results are bit-identical to serial ones.
        """
        wall_start = time.perf_counter()
        cache = EvalCache(enabled=self.use_cache)
        evaluator = ScheduleEvaluator(scenario, self.mcm, self.database,
                                      cache=cache)
        expected_lat = expected_layer_latencies(scenario, self.mcm,
                                                self.database)
        expected_en = expected_layer_energies(scenario, self.mcm,
                                              self.database)
        if self.packing == "greedy":
            plan = greedy_pack(scenario, expected_lat, self.nsplits)
        else:
            plan = uniform_pack(scenario, self.nsplits)

        tasks = []
        for window in plan.windows:
            shares = self._window_shares(window, expected_lat, expected_en)
            for alloc_index, alloc in enumerate(
                    self._allocations(window, shares)):
                tasks.append((window, alloc_index, alloc))

        if self.jobs > 1 and len(tasks) > 1:
            outcomes = self._run_tasks_parallel(scenario, tasks,
                                                expected_lat)
        else:
            outcomes = []
            for window, alloc_index, alloc in tasks:
                collected: list[WindowCandidate] = []
                best = self._search_one_alloc(scenario, window, alloc,
                                              expected_lat, evaluator,
                                              collected)
                outcomes.append((window.index, alloc_index, best,
                                 collected, None))

        best_by_window, all_candidates, num_evaluated, worker_stats = \
            self._merge_outcomes(plan, outcomes)

        schedule = Schedule(windows=tuple(
            candidate.window for candidate in best_by_window))
        metrics = evaluator.evaluate(schedule)
        perf = PerfReport(
            wall_s=time.perf_counter() - wall_start,
            num_evaluated=num_evaluated,
            num_windows=plan.num_windows,
            jobs=self.jobs,
            cache=merge_stats(cache.snapshot(), *worker_stats),
        )
        log_report(perf)
        return SCARResult(schedule=schedule, metrics=metrics, plan=plan,
                          window_candidates=tuple(all_candidates),
                          num_evaluated=num_evaluated, perf=perf)

    # -- task fan-out / merge -------------------------------------------------

    def _run_tasks_parallel(self, scenario: Scenario, tasks,
                            expected_lat: list[list[float]]):
        """Fan (window, alloc) tasks out over a process pool.

        Each worker builds one evaluator (fresh cache) at startup and
        reuses it across the tasks it receives; per-task cache-stat
        deltas ride back with the results so the parent can merge exact
        aggregate counters.
        """
        workers = min(self.jobs, len(tasks))
        with ProcessPoolExecutor(
                max_workers=workers, initializer=_worker_init,
                initargs=(self, scenario, expected_lat)) as pool:
            return list(pool.map(_worker_run, tasks))

    @staticmethod
    def _merge_outcomes(plan: PackingPlan, outcomes):
        """Deterministically merge per-(window, alloc) search outcomes."""
        outcomes = sorted(outcomes, key=lambda o: (o[0], o[1]))
        best: dict[int, tuple[tuple[float, int], WindowCandidate]] = {}
        collected: dict[int, list[WindowCandidate]] = {}
        worker_stats = []
        for window_index, alloc_index, candidate, evaluated, stats \
                in outcomes:
            collected.setdefault(window_index, []).extend(evaluated)
            rank = (candidate.score, alloc_index)
            if window_index not in best or rank < best[window_index][0]:
                best[window_index] = (rank, candidate)
            if stats is not None:
                worker_stats.append(stats)
        best_by_window = [best[w.index][1] for w in plan.windows]
        all_candidates = [tuple(collected.get(w.index, []))
                          for w in plan.windows]
        num_evaluated = sum(len(c) for c in all_candidates)
        return best_by_window, all_candidates, num_evaluated, worker_stats

    # -- engine plumbing ----------------------------------------------------------

    def _window_shares(self, window: WindowAssignment,
                       expected_lat: list[list[float]],
                       expected_en: list[list[float]]) -> dict[int, float]:
        """E(P_i) per model for the PROV rule, under the search objective.

        The latency-bound constraint (if any) applies to schedules, not to
        provisioning shares, so it is stripped here -- otherwise a heavy
        model's expected cost could score ``inf`` and break Eq. (2).
        """
        from dataclasses import replace
        unbounded = replace(self.objective, latency_bound_s=None)
        shares: dict[int, float] = {}
        for model, start, stop in window.ranges:
            lat = sum(expected_lat[model][start:stop])
            energy = sum(expected_en[model][start:stop])
            shares[model] = unbounded.score_values(lat, energy)
        return shares

    def _allocations(self, window: WindowAssignment,
                     shares: dict[int, float]) -> list[dict[int, int]]:
        if self.provisioning == "uniform":
            return [uniform_allocation(window, shares,
                                       self.mcm.num_chiplets,
                                       self.max_nodes_per_model)]
        return list(exhaustive_allocations(window, self.mcm.num_chiplets,
                                           self.max_nodes_per_model,
                                           limit=self.prov_limit))

    def _rank_for_window(self, scenario: Scenario, window: WindowAssignment,
                         alloc: dict[int, int],
                         expected_lat: list[list[float]]
                         ) -> dict[int, list[RankedSegmentation]]:
        ranked: dict[int, list[RankedSegmentation]] = {}
        for model, start, stop in window.ranges:
            instance = scenario[model]
            boundary = [float(instance.layer(i).output_bytes)
                        for i in range(start, stop)]
            ranked[model] = rank_segmentations(
                start, stop, alloc[model],
                expected_lat[model][start:stop], instance.batch,
                boundary, self.mcm.nop_gbps, self.budget)
        return ranked

    def _search_one_alloc(self, scenario: Scenario,
                          window: WindowAssignment, alloc: dict[int, int],
                          expected_lat: list[list[float]],
                          evaluator: ScheduleEvaluator,
                          collected: list[WindowCandidate]
                          ) -> WindowCandidate:
        """SEG + SCHED search of one window under one node allocation."""
        ranked = self._rank_for_window(scenario, window, alloc,
                                       expected_lat)
        if self.seg_search == "evolutionary":
            seeds = {m: [r.cuts for r in ranked[m]] for m in ranked}
            search = EvolutionarySegSearch(
                window, alloc, evaluator, self.objective, self.budget,
                config=self.ga_config, seeds=seeds)
            candidate = search.run()
            collected.extend(search.evaluated)
            return candidate
        return search_window(window, ranked, evaluator, self.objective,
                             self.budget, collect=collected)


# -- process-pool worker state (one evaluator per worker process) -----------

_WORKER: dict = {}


def _worker_init(scheduler: SCARScheduler, scenario: Scenario,
                 expected_lat: list[list[float]]) -> None:
    _WORKER["scheduler"] = scheduler
    _WORKER["scenario"] = scenario
    _WORKER["expected_lat"] = expected_lat
    _WORKER["evaluator"] = ScheduleEvaluator(
        scenario, scheduler.mcm, scheduler.database,
        cache=EvalCache(enabled=scheduler.use_cache))


def _worker_run(task):
    """Run one (window, alloc) task; return its outcome + stat deltas."""
    window, alloc_index, alloc = task
    scheduler: SCARScheduler = _WORKER["scheduler"]
    evaluator: ScheduleEvaluator = _WORKER["evaluator"]
    before = evaluator.cache.snapshot()
    collected: list[WindowCandidate] = []
    best = scheduler._search_one_alloc(_WORKER["scenario"], window, alloc,
                                       _WORKER["expected_lat"], evaluator,
                                       collected)
    after = evaluator.cache.snapshot()
    delta = {
        table: CacheStats(
            hits=stats.hits - before.get(table, CacheStats()).hits,
            misses=stats.misses - before.get(table, CacheStats()).misses)
        for table, stats in after.items()
    }
    return window.index, alloc_index, best, collected, delta
