"""SCAR core: schedule IR, evaluator, engines and the scheduler facade."""

from repro.core.analysis import (
    ChipletUtilization,
    ScheduleReport,
    TrafficBreakdown,
    analyze_schedule,
    gantt,
)
from repro.core.baselines import (
    BaselineResult,
    NNBatonScheduler,
    StandaloneScheduler,
)
from repro.core.budget import QUICK_BUDGET, SearchBudget
from repro.core.evalcache import EvalCache, segment_place_key, window_key
from repro.core.evolutionary import EvolutionarySegSearch, GAConfig
from repro.core.metrics import (
    ModelWindowMetrics,
    ScheduleEvaluator,
    ScheduleMetrics,
    WindowMetrics,
)
from repro.core.packing import (
    PackingPlan,
    WindowAssignment,
    expected_layer_energies,
    expected_layer_latencies,
    greedy_pack,
    uniform_pack,
)
from repro.core.provisioner import exhaustive_allocations, uniform_allocation
from repro.core.scar import SCARResult, SCARScheduler
from repro.core.schedule import Schedule, Segment, WindowSchedule
from repro.core.scoring import (
    Objective,
    OptTarget,
    edp_objective,
    energy_objective,
    latency_objective,
    objective_by_name,
)
from repro.core.sched_engine import (
    WindowCandidate,
    build_window_schedule,
    search_window,
)
from repro.core.sched_tree import placements, simple_paths
from repro.core.segmentation import (
    RankedSegmentation,
    enumerate_cut_candidates,
    rank_segmentations,
    segments_from_cuts,
)

__all__ = [
    "BaselineResult", "ChipletUtilization", "EvalCache", "ScheduleReport",
    "TrafficBreakdown", "analyze_schedule", "gantt", "EvolutionarySegSearch", "GAConfig",
    "ModelWindowMetrics", "NNBatonScheduler", "Objective", "OptTarget",
    "PackingPlan", "QUICK_BUDGET", "RankedSegmentation", "SCARResult",
    "SCARScheduler", "Schedule", "ScheduleEvaluator", "ScheduleMetrics",
    "SearchBudget", "Segment", "StandaloneScheduler", "WindowAssignment",
    "WindowCandidate", "WindowMetrics", "WindowSchedule",
    "build_window_schedule", "edp_objective", "energy_objective",
    "enumerate_cut_candidates", "exhaustive_allocations",
    "expected_layer_energies", "expected_layer_latencies", "greedy_pack",
    "latency_objective", "objective_by_name", "placements",
    "rank_segmentations", "search_window", "segment_place_key",
    "segments_from_cuts", "simple_paths", "uniform_allocation",
    "uniform_pack", "window_key",
]
