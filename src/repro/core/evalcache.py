"""Memoized segment-cost cache for the schedule evaluator.

Candidates inside one window overwhelmingly share ``(model, start, stop)``
sub-chains -- the SCHED engine re-places the same segmentations over and
over -- and a segment's cost does not depend on *which* chiplet hosts it,
only on the chiplet's **placement class**::

    place_key = (chiplet.class_key, io_hops(node))

``class_key`` fixes the dataflow/resource tuple (compute cycles, SRAM
residency) and ``io_hops`` fixes every off-chip term (DRAM re-fetch,
weight streaming).  Two segments with equal place keys are bit-identical
in cost, so the cache can serve a segment evaluated on node 3 when the
search later tries node 5 of the same class.

Four memo tables live here (hit/miss counters per table, surfaced via
:mod:`repro.perf`):

``compute``   (model, start, stop, place_key, minibatch) -> (lat_s, j)
              The mini-batch is part of the key because intra-layer cost
              is *non-linear* in batch (tiling, stalls, DRAM re-fetch
              rounds change shape); the pipelining tile factor is applied
              *after* lookup as ``var/tile + fix`` -- see DESIGN.md.
``static``    (model, start, stop, place_key) -> weight/residency terms.
``chain``     (chain structure, relevant congestion factors) -> one
              model's :class:`~repro.core.metrics.ModelWindowMetrics`;
              the delta-evaluation fast path of
              :class:`repro.engine.CandidateEvaluator` serves chains
              whose cut boundaries did not move from here.
``window``    canonical window structure -> :class:`WindowMetrics`;
              serves duplicate placements and the final re-evaluation of
              the winning schedule.

Every table is **LRU-bounded** (``max_entries`` per table, default
:data:`DEFAULT_MAX_ENTRIES`); long service sessions therefore hold cache
memory constant, and evicted entries simply recompute bit-identically on
the next lookup.  Eviction counts ride along in the per-table
:class:`~repro.perf.CacheStats` and surface through :meth:`snapshot`.

A cache instance is only valid for one (scenario, MCM) pair -- keys do
not include workload or package identity.  ``EvalCache(enabled=False)``
degrades every lookup to a recomputation (used by the property tests to
prove cached == uncached).
"""

# scar: hot -- allocation-linted kernel module (SCAR010)
from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from repro.perf import CacheStats

SegmentKey = tuple
"""(model, start, stop, chiplet class_key, io_hops)."""

#: Default per-table LRU cap.  Generous enough that single paper-scale
#: runs effectively never evict, small enough that a long-running job
#: service cannot grow per-run caches without bound.
DEFAULT_MAX_ENTRIES = 65536

#: Internal sentinel distinguishing "absent" from a cached ``None``.
_MISSING = object()


class EvalCache:
    """Hit-counting, LRU-bounded memo tables shared by one evaluator.

    ``lookup(table, key, factory)`` returns the cached value or computes,
    stores and returns ``factory()``.  Unknown table names create a new
    table on first use, so auxiliary memos (e.g. the GA fitness cache)
    can report through the same stats channel via :meth:`record`.

    ``max_entries`` bounds every table with least-recently-used
    eviction; ``None`` restores the unbounded legacy behaviour.
    Eviction never changes results -- entries are pure functions of
    their keys -- it only trades recomputation for memory.
    """

    def __init__(self, *, enabled: bool = True,
                 max_entries: int | None = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be None or >= 1, got {max_entries}")
        self.enabled = enabled
        self.max_entries = max_entries
        self._tables: dict[str, OrderedDict[Any, Any]] = {}
        self.stats: dict[str, CacheStats] = {}

    def _stats(self, table: str) -> CacheStats:
        if table not in self.stats:
            self.stats[table] = CacheStats()
        return self.stats[table]

    def lookup(self, table: str, key: Any,
               factory: Callable[[], Any]) -> Any:
        """Fetch ``key`` from ``table``, computing via ``factory`` on miss."""
        stats = self.stats.get(table)
        if stats is None:
            stats = self._stats(table)
        if not self.enabled:
            stats.record(hit=False)
            return factory()
        store = self._tables.get(table)
        if store is None:
            store = self._tables.setdefault(table, OrderedDict())
        value = store.get(key, _MISSING)
        if value is not _MISSING:
            stats.record(hit=True)
            store.move_to_end(key)  # LRU touch
            return value
        stats.record(hit=False)
        value = factory()
        store[key] = value
        if self.max_entries is not None:
            while len(store) > self.max_entries:
                store.popitem(last=False)
                stats.evictions += 1
        return value

    def record(self, table: str, hit: bool) -> None:
        """Count a hit/miss for a memo managed outside this cache."""
        self._stats(table).record(hit)

    def size(self, table: str) -> int:
        return len(self._tables.get(table, ()))

    def snapshot(self) -> dict[str, CacheStats]:
        """Copy of the per-table counters (for cross-process merging)."""
        return {table: CacheStats(hits=s.hits, misses=s.misses,
                                  evictions=s.evictions)
                for table, s in self.stats.items()}


def segment_place_key(segment, chiplet, io_hops: int) -> SegmentKey:
    """Placement-class cache key of one segment (node-id independent)."""
    return (segment.model, segment.start, segment.stop,
            chiplet.class_key, io_hops)


def window_key(window) -> tuple:
    """Canonical, hashable identity of a window schedule's structure."""
    return (window.index, tuple(
        tuple((seg.model, seg.start, seg.stop, seg.node) for seg in chain)
        for chain in window.chains))
