"""Unit helpers shared across the cost models.

The paper mixes several unit systems (Table II reports ns, pJ/bit and GB/s;
results are reported in seconds, joules and J*s at a 500 MHz clock).  All
internal models work in *cycles*, *bytes* and *picojoules*; this module holds
the conversion helpers and the few physical constants that are not part of a
configurable hardware description.
"""

from __future__ import annotations

# Storage units -------------------------------------------------------------

KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB

# Time units (seconds) ------------------------------------------------------

NS: float = 1e-9
US: float = 1e-6
MS: float = 1e-3

# Energy units (joules) -----------------------------------------------------

PJ: float = 1e-12
NJ: float = 1e-9
MJ: float = 1e-3


def cycles_to_seconds(cycles: float, clock_hz: float) -> float:
    """Convert a cycle count to seconds at the given clock frequency."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return cycles / clock_hz


def seconds_to_cycles(seconds: float, clock_hz: float) -> float:
    """Convert seconds to (fractional) cycles at the given clock frequency."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return seconds * clock_hz


def gbps_to_bytes_per_cycle(gb_per_s: float, clock_hz: float) -> float:
    """Convert a GB/s bandwidth figure to bytes per clock cycle."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return gb_per_s * 1e9 / clock_hz


def pj_per_bit_to_pj_per_byte(pj_per_bit: float) -> float:
    """Convert an energy-per-bit figure to energy per byte."""
    return pj_per_bit * 8.0


def transfer_seconds(size_bytes: float, gb_per_s: float) -> float:
    """Serialization latency of moving ``size_bytes`` over a GB/s link."""
    if gb_per_s <= 0:
        raise ValueError(f"bandwidth must be positive, got {gb_per_s}")
    return size_bytes / (gb_per_s * 1e9)
