"""Aggregation and plain-text reporting over sweep outcomes.

Mirrors the experiment drivers' reporting style (aligned ASCII tables,
no plotting dependency): one row per cell with its metrics, a
best-EDP-per-scenario summary, and the run's computed/skipped/failed
tallies -- the operator-facing view of a campaign and of how much a
resume actually skipped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sweep.runner import SweepOutcome
from repro.sweep.spec import cell_scenario_label


@dataclass(frozen=True)
class SweepReport:
    """Rendered-table view of one :class:`SweepOutcome`."""

    outcome: SweepOutcome

    def summary_line(self) -> str:
        outcome = self.outcome
        return (f"sweep: {len(outcome.requests)} cells, "
                f"{outcome.computed} computed, {outcome.skipped} skipped "
                f"(resumed), {outcome.failed} failed")

    def cell_rows(self) -> list[tuple]:
        rows = []
        for request, key in zip(self.outcome.requests,
                                self.outcome.keys):
            label = cell_scenario_label(request)
            result = self.outcome.results.get(key)
            if result is None:
                error = self.outcome.failures.get(key)
                status = error.code if error is not None else "missing"
                rows.append((label, request.template, request.policy,
                             request.objective, request.nsplits,
                             request.backend or "-",
                             request.beam if request.beam is not None
                             else "-",
                             status, "-", "-"))
                continue
            rows.append((label, request.template, request.policy,
                         request.objective, request.nsplits,
                         request.backend or "-",
                         request.beam if request.beam is not None else "-",
                         result.latency_s, result.energy_j, result.edp))
        return rows

    def best_by_scenario(self) -> dict[str, tuple]:
        """Per scenario label: the (request, result) with the lowest EDP."""
        best: dict[str, tuple] = {}
        for request, key in zip(self.outcome.requests,
                                self.outcome.keys):
            result = self.outcome.results.get(key)
            if result is None:
                continue
            label = cell_scenario_label(request)
            if label not in best or result.edp < best[label][1].edp:
                best[label] = (request, result)
        return best

    def to_document(self) -> dict:
        """Plain-JSON report document (``kind: "sweep_report"``).

        Carries the resume-verification facts alongside the cell
        metrics: ``computed``/``skipped``/``failed`` tallies and the
        run's aggregate segment-evaluation counter (``num_segments``),
        which stays flat at 0 when every cell was served from the
        store.
        """
        from repro.api.wire import WIRE_VERSION

        outcome = self.outcome
        cells = []
        for request, key in zip(outcome.requests, outcome.keys):
            result = outcome.results.get(key)
            cell: dict = {
                "scenario": cell_scenario_label(request),
                "template": request.template,
                "policy": request.policy,
                "objective": request.objective,
                "nsplits": request.nsplits,
                "backend": request.backend,
                "beam": request.beam,
                "eval_mode": request.eval_mode,
                "key": key,
            }
            if result is None:
                error = outcome.failures.get(key)
                cell["error"] = None if error is None else error.to_dict()
            else:
                cell["latency_s"] = result.latency_s
                cell["energy_j"] = result.energy_j
                cell["edp"] = result.edp
            cells.append(cell)
        return {
            "kind": "sweep_report",
            "version": WIRE_VERSION,
            "cells": len(outcome.requests),
            "computed": outcome.computed,
            "skipped": outcome.skipped,
            "failed": outcome.failed,
            "num_segments": 0 if outcome.perf is None
            else outcome.perf.num_segments,
            "rows": cells,
        }

    def render(self) -> str:
        # Imported lazily: the experiment drivers are themselves sweep
        # consumers, so a module-level import would be circular.
        from repro.experiments.reporting import format_table

        blocks = [self.summary_line()]
        blocks.append(format_table(
            ("scenario", "template", "policy", "objective", "nsplits",
             "backend", "beam", "latency (s)", "energy (J)", "EDP (J.s)"),
            self.cell_rows(), title="sweep cells"))
        best = self.best_by_scenario()
        if best:
            rows = [(label, request.template, request.policy,
                     result.edp)
                    for label, (request, result) in sorted(best.items())]
            blocks.append(format_table(
                ("scenario", "template", "policy", "best EDP (J.s)"),
                rows, title="best EDP per scenario"))
        return "\n\n".join(blocks)


def sweep_report(outcome: SweepOutcome) -> SweepReport:
    """The report view of one outcome (``.render()`` for the text)."""
    return SweepReport(outcome)
