"""Sweep execution: the grid, through the service worker pool.

:func:`run_requests` is the execution layer every campaign shares --
the experiment drivers (Figs. 8/11/12) hand it explicit request lists,
``scar sweep`` hands it a :class:`~repro.sweep.spec.SweepSpec` via
:func:`run_sweep`.  Cells already present in the
:class:`~repro.sweep.store.ResultStore` are *skipped* (their stored
results are returned bit-identically); the rest run as jobs on a
:class:`~repro.service.SchedulerService` worker pool over one
:class:`~repro.api.Session`, so a sweep's per-cell results are
bit-identical to serial ``Session.submit`` calls -- the service
determinism contract.

A failing cell does not abort the campaign: its error document is
collected in :attr:`SweepOutcome.failures` and *nothing* is stored, so
a rerun retries exactly the failed cells.  :attr:`SweepOutcome.perf`
aggregates the session's engine counters for this run only -- on a
fully-resumed sweep (every cell skipped) the segment-evaluation
counters stay flat at zero, which is the cheap way to verify no cell
was recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.api.request import ScheduleRequest, ScheduleResult
from repro.api.session import Session
from repro.api.wire import ErrorDocument
from repro.errors import ReproError
from repro.perf import PerfReport, aggregate_reports
from repro.service.scheduler import SchedulerService
from repro.sweep.spec import SweepSpec
from repro.sweep.store import ResultStore


@dataclass
class SweepOutcome:
    """Everything one sweep run produced.

    ``results`` maps each cell's cache key to its result (stored or
    freshly computed); ``failures`` maps failed cells to their error
    documents.  ``computed``/``skipped``/``failed`` count cells (grid
    duplicates count once per occurrence in ``requests``).
    """

    requests: tuple[ScheduleRequest, ...]
    #: ``requests[i]``'s cache key -- computed once; the key dump of a
    #: request with a large inlined scenario spec is not free.
    keys: tuple[str, ...] = ()
    results: dict[str, ScheduleResult] = field(default_factory=dict)
    failures: dict[str, ErrorDocument] = field(default_factory=dict)
    computed: int = 0
    skipped: int = 0
    perf: PerfReport | None = None

    def __post_init__(self) -> None:
        if not self.keys:
            self.keys = tuple(request.cache_key()
                              for request in self.requests)

    @property
    def failed(self) -> int:
        return sum(1 for key in self.keys if key in self.failures)

    def result_for(self, request: ScheduleRequest) -> ScheduleResult | None:
        """The cell's result, or ``None`` if it failed this run."""
        return self.results.get(request.cache_key())

    def result_at(self, index: int) -> ScheduleResult:
        """Cell ``index``'s result; a failed cell re-raises its typed
        error -- the strict accessor the experiment drivers use."""
        key = self.keys[index]
        result = self.results.get(key)
        if result is not None:
            return result
        error = self.failures.get(key)
        if error is not None:
            raise error.exception()
        raise ReproError(f"sweep cell {index} has no result")

    def ordered_results(self) -> list[ScheduleResult | None]:
        """Results in request order (``None`` for failed cells)."""
        return [self.results.get(key) for key in self.keys]


def run_requests(requests: Iterable[ScheduleRequest], *,
                 store: ResultStore | None = None,
                 workers: int = 1,
                 session: Session | None = None) -> SweepOutcome:
    """Run a list of cells, skipping any already in ``store``.

    ``workers`` sizes the service worker pool (results are
    bit-identical to ``workers=1``); ``session`` lets callers share a
    memo across campaigns.  Returns a :class:`SweepOutcome`; failed
    cells are collected, not raised.
    """
    requests = tuple(requests)
    session = session if session is not None else Session()
    # Perf snapshot: outcome.perf must cover THIS run only, even on a
    # caller-shared session whose log already holds earlier campaigns.
    # Holding the snapshot list keeps its report objects alive, so the
    # identity filter below stays exact even if the session's cap trims
    # the log mid-run.
    perf_before = list(session.perf_reports)
    outcome = SweepOutcome(requests=requests)

    pending: list[tuple[str, ScheduleRequest]] = []
    pending_keys: set[str] = set()
    for key, request in zip(outcome.keys, requests):
        stored = None
        if store is not None:
            # get() parses the stored payload; a cell whose document no
            # longer loads reports absent and is recomputed below.
            stored = outcome.results.get(key) or store.get(key)
        if stored is not None:
            outcome.results[key] = stored
            outcome.skipped += 1
        elif key not in pending_keys:
            pending_keys.add(key)
            pending.append((key, request))

    if pending:
        with SchedulerService(session, workers=workers) as service:
            handles = service.submit_many(
                [request for _, request in pending])
            for (key, request), handle in zip(pending, handles):
                try:
                    result = handle.result()
                except ReproError as exc:
                    outcome.failures[key] = \
                        ErrorDocument.from_exception(exc)
                    continue
                outcome.results[key] = result
                if store is not None:
                    store.record(result, key=key)
    # Cells whose key was computed (not failed) this run, in grid terms:
    outcome.computed = sum(
        1 for key in outcome.keys
        if key in pending_keys and key in outcome.results)
    # Aggregate only the reports this run appended (trim-proof: by
    # object identity against the held snapshot).
    before_ids = {id(report) for report in perf_before}
    outcome.perf = aggregate_reports(
        [report for report in list(session.perf_reports)
         if id(report) not in before_ids])
    return outcome


def run_sweep(spec: SweepSpec, *,
              store: ResultStore | None = None,
              workers: int = 1,
              session: Session | None = None) -> SweepOutcome:
    """Expand a :class:`SweepSpec` grid and run it (see
    :func:`run_requests`)."""
    return run_requests(spec.requests(), store=store, workers=workers,
                        session=session)
