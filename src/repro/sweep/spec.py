"""Declarative sweep specifications: a grid of scheduling cells.

A :class:`SweepSpec` names a campaign as data: scenarios (Table III ids
and/or inline scenario documents, e.g. from ``scar generate``) crossed
with MCM templates, scheduler policies, objectives and the engine knobs
(``nsplits`` x ``backend`` x ``beam``).  :meth:`SweepSpec.requests`
expands the grid into :class:`~repro.api.request.ScheduleRequest`
cells in a deterministic order; each cell's
:meth:`~repro.api.request.ScheduleRequest.cache_key` is its identity in
the JSONL result store (:mod:`repro.sweep.store`), which is what makes
campaigns resumable.

The spec itself round-trips through JSON (``kind: "sweep_spec"``), so
campaigns can live in files next to their result stores.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Iterator, Sequence

from repro.api.request import ScheduleRequest
from repro.api.wire import WIRE_VERSION, check_envelope, loads_document
from repro.core.budget import SearchBudget
from repro.errors import ConfigError

_SPEC_KIND = "sweep_spec"


def cell_scenario_label(request: ScheduleRequest) -> str:
    """Short display label for a cell's workload."""
    if request.scenario_id is not None:
        return f"sc{request.scenario_id}"
    return str(request.scenario_spec.get("name", "<inline>"))


@dataclass(frozen=True)
class SweepSpec:
    """One declarative scheduling campaign.

    ``scenarios`` entries are Table III ids (``int``) or inline scenario
    documents (``dict``, the :func:`repro.config.files.scenario_to_dict`
    form).  Every other axis is a tuple of values to cross; ``backends``,
    ``beams`` and ``eval_modes`` accept ``None`` entries (session-default
    backend / exhaustive search / scalar costing kernel).  ``budget``,
    ``jobs`` and ``use_eval_cache`` apply to every cell.
    """

    scenarios: tuple[int | dict, ...]
    templates: tuple[str, ...] = ("het_sides_3x3",)
    policies: tuple[str, ...] = ("scar",)
    objectives: tuple[str, ...] = ("edp",)
    nsplits: tuple[int, ...] = (4,)
    backends: tuple[str | None, ...] = (None,)
    beams: tuple[int | None, ...] = (None,)
    eval_modes: tuple[str | None, ...] = (None,)
    budget: SearchBudget = field(default_factory=SearchBudget)
    jobs: int = 1
    use_eval_cache: bool = True

    def __post_init__(self) -> None:
        for axis in ("scenarios", "templates", "policies", "objectives",
                     "nsplits", "backends", "beams", "eval_modes"):
            values = getattr(self, axis)
            if isinstance(values, (str, int, dict)) \
                    or not isinstance(values, Sequence):
                raise ConfigError(
                    f"sweep axis {axis!r} must be a sequence of values, "
                    f"got {values!r}")
            values = tuple(values)
            if not values:
                raise ConfigError(f"sweep axis {axis!r} is empty")
            object.__setattr__(self, axis, values)
        for entry in self.scenarios:
            if not isinstance(entry, (int, dict)) \
                    or isinstance(entry, bool):
                raise ConfigError(
                    "sweep scenarios must be Table III ids (int) or "
                    f"inline scenario documents (dict), got {entry!r}")
        if self.jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {self.jobs}")

    @property
    def size(self) -> int:
        """Number of cells in the grid."""
        return (len(self.scenarios) * len(self.templates)
                * len(self.policies) * len(self.objectives)
                * len(self.nsplits) * len(self.backends)
                * len(self.beams) * len(self.eval_modes))

    def requests(self) -> tuple[ScheduleRequest, ...]:
        """The grid's cells, in deterministic scenario-major order.

        Building the requests validates every axis value that
        :class:`ScheduleRequest` validates (objective, backend, beam,
        nsplits); unknown templates/policies surface at submit time,
        per cell.
        """
        return tuple(self._iter_requests())

    def _iter_requests(self) -> Iterator[ScheduleRequest]:
        for entry in self.scenarios:
            workload = {"scenario_spec": entry} if isinstance(entry, dict) \
                else {"scenario_id": entry}
            for template in self.templates:
                for policy in self.policies:
                    for objective in self.objectives:
                        for nsplits in self.nsplits:
                            for backend in self.backends:
                                for beam in self.beams:
                                    for mode in self.eval_modes:
                                        yield ScheduleRequest(
                                            **workload,
                                            template=template,
                                            policy=policy,
                                            objective=objective,
                                            nsplits=nsplits,
                                            backend=backend, beam=beam,
                                            eval_mode=mode,
                                            budget=self.budget,
                                            jobs=self.jobs,
                                            use_eval_cache=(
                                                self.use_eval_cache))

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": _SPEC_KIND,
            "version": WIRE_VERSION,
            "scenarios": list(self.scenarios),
            "templates": list(self.templates),
            "policies": list(self.policies),
            "objectives": list(self.objectives),
            "nsplits": list(self.nsplits),
            "backends": list(self.backends),
            "beams": list(self.beams),
            "eval_modes": list(self.eval_modes),
            "budget": asdict(self.budget),
            "jobs": self.jobs,
            "use_eval_cache": self.use_eval_cache,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SweepSpec":
        check_envelope(data, _SPEC_KIND)
        try:
            return cls(
                scenarios=tuple(data["scenarios"]),
                templates=tuple(data.get("templates",
                                         ("het_sides_3x3",))),
                policies=tuple(data.get("policies", ("scar",))),
                objectives=tuple(data.get("objectives", ("edp",))),
                nsplits=tuple(data.get("nsplits", (4,))),
                backends=tuple(data.get("backends", (None,))),
                beams=tuple(data.get("beams", (None,))),
                # .get: specs written before the vector kernel landed
                # have no eval_modes axis and mean the scalar default.
                eval_modes=tuple(data.get("eval_modes", (None,))),
                budget=SearchBudget(**data["budget"])
                if data.get("budget") is not None else SearchBudget(),
                jobs=data.get("jobs", 1),
                use_eval_cache=data.get("use_eval_cache", True),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed sweep spec: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(loads_document(text, "sweep spec"))
