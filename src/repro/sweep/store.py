"""Append-only JSONL result store: what makes sweeps resumable.

One line per finished cell::

    {"kind": "sweep_cell", "version": 1,
     "key": "<ScheduleRequest.cache_key()>",
     "result": {<schedule_result wire document>}}

The key is the request's canonical wire form, so a rerun of the same
spec recognizes finished cells regardless of how the grid was produced,
and a stored result rebuilds bit-identically through
:meth:`~repro.api.request.ScheduleResult.from_dict` (the wire round-trip
is exact on the determinism payload).

Loading is tolerant of a torn final line -- the signature of a run
killed mid-append -- and of stray blank lines; any skipped garbage is
counted in :attr:`ResultStore.corrupt_lines` rather than aborting the
campaign.  Appends flush per line, so at most the line being written
when the process died is lost.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

from repro.api.request import ScheduleResult
from repro.api.wire import WIRE_VERSION
from repro.errors import ConfigError

#: Document kind of one stored cell line.
CELL_KIND = "sweep_cell"


class ResultStore:
    """JSONL-backed map ``cache_key -> schedule-result document``.

    Results are kept as raw wire documents and parsed to
    :class:`ScheduleResult` on access, so loading a large store stays
    cheap.  Recording an already-stored key is a no-op (duplicate grid
    cells never duplicate lines).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._documents: dict[str, dict[str, Any]] = {}
        self.corrupt_lines = 0
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    self.corrupt_lines += 1
                    continue
                if (not isinstance(entry, dict)
                        or entry.get("kind") != CELL_KIND
                        or not isinstance(entry.get("key"), str)
                        or not isinstance(entry.get("result"), dict)):
                    self.corrupt_lines += 1
                    continue
                self._documents[entry["key"]] = entry["result"]

    # -- mapping surface ---------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def keys(self) -> Iterator[str]:
        return iter(self._documents)

    def get(self, key: str) -> ScheduleResult | None:
        """Rebuild the stored result for ``key`` (``None`` if absent).

        A stored document that no longer parses -- a wire-version bump,
        mid-file corruption that still decoded as JSON -- is dropped
        (counted in :attr:`corrupt_lines`) and reported as absent, so
        the runner recomputes and re-records the cell instead of
        aborting the campaign.
        """
        document = self._documents.get(key)
        if document is None:
            return None
        try:
            return ScheduleResult.from_dict(document)
        except ConfigError:
            del self._documents[key]
            self.corrupt_lines += 1
            return None

    # -- recording ---------------------------------------------------------

    def record(self, result: ScheduleResult, *,
               key: str | None = None) -> None:
        """Persist one finished cell (idempotent per cache key).

        ``key`` lets callers that already computed the request's cache
        key (the runner) skip re-serializing the request document.
        """
        if key is None:
            key = result.request.cache_key()
        if key in self._documents:
            return
        document = result.to_dict()
        line = json.dumps({"kind": CELL_KIND, "version": WIRE_VERSION,
                           "key": key, "result": document},
                          sort_keys=True, separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
        self._documents[key] = document
