"""Append-only JSONL result store: what makes sweeps resumable.

One line per finished cell::

    {"kind": "sweep_cell", "version": 1,
     "key": "<ScheduleRequest.cache_key()>",
     "result": {<schedule_result wire document>}}

The key is the request's canonical wire form, so a rerun of the same
spec recognizes finished cells regardless of how the grid was produced,
and a stored result rebuilds bit-identically through
:meth:`~repro.api.request.ScheduleResult.from_dict` (the wire round-trip
is exact on the determinism payload).

The store is also the service layer's cross-replica schedule cache:
several processes may share one file, each appending finished cells and
periodically calling :meth:`ResultStore.refresh` to pick up lines the
others wrote.  Loading is therefore incremental and tolerant of an
unterminated final line -- either another replica's append still in
flight or the torn signature of a run killed mid-write -- which is left
pending and re-examined on the next refresh instead of being consumed.
Complete lines that do not parse are counted in
:attr:`ResultStore.corrupt_lines` rather than aborting the campaign.
Appends flush per line, so at most the line being written when a
process died is lost.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Iterator

from repro.api.request import ScheduleResult
from repro.api.wire import WIRE_VERSION
from repro.errors import ConfigError

#: Document kind of one stored cell line.
CELL_KIND = "sweep_cell"


class ResultStore:
    """JSONL-backed map ``cache_key -> schedule-result document``.

    Results are kept as raw wire documents and parsed to
    :class:`ScheduleResult` on access, so loading a large store stays
    cheap.  Recording an already-stored key is a no-op (duplicate grid
    cells never duplicate lines).  All methods are thread-safe; cross-
    process coherence is explicit via :meth:`refresh`.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.RLock()
        self._documents: dict[str, dict[str, Any]] = {}
        self._offset = 0
        self.corrupt_lines = 0
        self.refresh()

    def refresh(self) -> int:
        """Incrementally load lines appended since the last load.

        Reads forward from the byte offset of the last fully consumed
        line, so a refresh after another replica's append costs one
        seek plus the new bytes.  Only newline-terminated lines are
        consumed: an unterminated tail stays pending (the writer may
        still be mid-append) and is retried next time.  Returns the
        number of newly loaded cells.
        """
        with self._lock:
            try:
                with self.path.open("rb") as handle:
                    handle.seek(self._offset)
                    data = handle.read()
            except FileNotFoundError:
                return 0
            end = data.rfind(b"\n")
            if end < 0:
                return 0
            loaded = 0
            for raw in data[:end].split(b"\n"):
                line = raw.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    self.corrupt_lines += 1
                    continue
                if (not isinstance(entry, dict)
                        or entry.get("kind") != CELL_KIND
                        or not isinstance(entry.get("key"), str)
                        or not isinstance(entry.get("result"), dict)):
                    self.corrupt_lines += 1
                    continue
                self._documents[entry["key"]] = entry["result"]
                loaded += 1
            self._offset += end + 1
            return loaded

    # -- mapping surface ---------------------------------------------------

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._documents

    def __len__(self) -> int:
        with self._lock:
            return len(self._documents)

    def keys(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._documents))

    def get(self, key: str) -> ScheduleResult | None:
        """Rebuild the stored result for ``key`` (``None`` if absent).

        A stored document that no longer parses -- a wire-version bump,
        mid-file corruption that still decoded as JSON -- is dropped
        (counted in :attr:`corrupt_lines`) and reported as absent, so
        the runner recomputes and re-records the cell instead of
        aborting the campaign.
        """
        with self._lock:
            document = self._documents.get(key)
            if document is None:
                return None
            try:
                return ScheduleResult.from_dict(document)
            except ConfigError:
                del self._documents[key]
                self.corrupt_lines += 1
                return None

    # -- recording ---------------------------------------------------------

    def record(self, result: ScheduleResult, *,
               key: str | None = None) -> None:
        """Persist one finished cell (idempotent per cache key).

        ``key`` lets callers that already computed the request's cache
        key (the runner) skip re-serializing the request document.
        Refreshes first, so a cell another replica finished in the
        meantime is adopted instead of appended again.
        """
        if key is None:
            key = result.request.cache_key()
        with self._lock:
            self.refresh()
            if key in self._documents:
                return
            document = result.to_dict()
            line = json.dumps({"kind": CELL_KIND, "version": WIRE_VERSION,
                               "key": key, "result": document},
                              sort_keys=True, separators=(",", ":"))
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
            self._documents[key] = document
