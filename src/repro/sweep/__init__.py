"""Sweep orchestration: declarative scheduling campaigns at scale.

The layer between workloads and the service: a declarative
:class:`SweepSpec` grid (scenarios x templates x policies x engine
knobs) expands into :class:`~repro.api.request.ScheduleRequest` cells,
runs through the :class:`~repro.service.SchedulerService` worker pool,
and lands in a resumable JSONL :class:`ResultStore` keyed by each
cell's ``cache_key``::

    from repro.sweep import ResultStore, SweepSpec, run_sweep, sweep_report

    spec = SweepSpec(scenarios=(1, 2), policies=("scar", "standalone"))
    store = ResultStore("campaign.jsonl")
    outcome = run_sweep(spec, store=store, workers=4)
    print(sweep_report(outcome).render())   # rerun: all cells skipped

Experiment drivers reuse the same execution layer through
:func:`run_requests` with explicit request lists.  See DESIGN.md
("Scenario generation and sweeps").
"""

from repro.sweep.report import SweepReport, sweep_report
from repro.sweep.runner import SweepOutcome, run_requests, run_sweep
from repro.sweep.spec import SweepSpec, cell_scenario_label
from repro.sweep.status import SweepStatus, sweep_status
from repro.sweep.store import CELL_KIND, ResultStore

__all__ = [
    "CELL_KIND", "ResultStore", "SweepOutcome", "SweepReport",
    "SweepSpec", "SweepStatus", "cell_scenario_label", "run_requests",
    "run_sweep", "sweep_report", "sweep_status",
]
