"""Read-only campaign progress: which cells of a sweep are done.

``scar sweep --status`` answers "how far along is this campaign?"
without running anything: expand the :class:`~repro.sweep.spec.SweepSpec`
grid, check each cell's cache key against the
:class:`~repro.sweep.store.ResultStore`, and report finished / pending
counts plus the pending cells themselves.  Safe to run while another
process is executing the sweep -- the store is only read.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.request import ScheduleRequest
from repro.sweep.spec import SweepSpec, cell_scenario_label
from repro.sweep.store import ResultStore


@dataclass(frozen=True)
class SweepStatus:
    """Progress snapshot of one (spec, store) pair.

    ``finished``/``pending`` partition the grid's requests in
    expansion order; a cell is finished when its ``cache_key`` is
    present in the store.  ``extra`` counts store entries that are not
    cells of this spec (a shared store, or a spec that shrank).
    """

    spec: SweepSpec
    finished: tuple[ScheduleRequest, ...]
    pending: tuple[ScheduleRequest, ...]
    extra: int

    @property
    def total(self) -> int:
        return len(self.finished) + len(self.pending)

    @property
    def complete(self) -> bool:
        return not self.pending

    def to_document(self) -> dict:
        """Plain-JSON progress document (``kind: "sweep_status"``)."""
        from repro.api.wire import WIRE_VERSION

        def row(request: ScheduleRequest) -> dict:
            return {
                "scenario": cell_scenario_label(request),
                "template": request.template,
                "policy": request.policy,
                "objective": request.objective,
                "nsplits": request.nsplits,
                "backend": request.backend,
                "beam": request.beam,
                "key": request.cache_key(),
            }

        return {
            "kind": "sweep_status",
            "version": WIRE_VERSION,
            "cells": self.total,
            "finished": len(self.finished),
            "pending": len(self.pending),
            "extra_store_entries": self.extra,
            "complete": self.complete,
            "pending_rows": [row(request) for request in self.pending],
        }

    def render(self) -> str:
        lines = [
            f"sweep status: {len(self.finished)}/{self.total} cells "
            f"finished, {len(self.pending)} pending"
            + (f", {self.extra} unrelated store entries"
               if self.extra else "")
        ]
        for request in self.pending:
            beam = request.beam if request.beam is not None else "-"
            lines.append(
                f"  pending: {cell_scenario_label(request)} "
                f"{request.template} {request.policy} "
                f"{request.objective} nsplits={request.nsplits} "
                f"backend={request.backend or '-'} beam={beam}")
        if self.complete:
            lines.append("  campaign complete")
        return "\n".join(lines)


def sweep_status(spec: SweepSpec,
                 store: ResultStore | None) -> SweepStatus:
    """Snapshot a campaign's progress against its result store.

    ``store=None`` (no ``--store``) means nothing is persisted: every
    cell is pending.
    """
    requests = spec.requests()
    if store is None:
        return SweepStatus(spec=spec, finished=(), pending=requests,
                           extra=0)
    store.refresh()
    finished = []
    pending = []
    spec_keys = set()
    for request in requests:
        key = request.cache_key()
        spec_keys.add(key)
        if key in store:
            finished.append(request)
        else:
            pending.append(request)
    extra = sum(1 for key in store.keys() if key not in spec_keys)
    return SweepStatus(spec=spec, finished=tuple(finished),
                       pending=tuple(pending), extra=extra)
