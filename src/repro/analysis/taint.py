"""SCAR007: inter-procedural RNG/wall-clock taint dataflow.

SCAR002 bans nondeterminism *inside* the kernel modules by name; this
checker closes the remaining hole -- nondeterminism produced elsewhere
and handed in.  A value derived from the process-wide ``random``
module, a wall-clock read (``time.time``/``monotonic``/
``perf_counter`` and friends, ``datetime.now``), ``os.urandom`` or
``uuid.uuid*`` is *tainted*; a call that passes a tainted argument
into :mod:`repro.engine`, :mod:`repro.sweep`, :mod:`repro.sim` or
:mod:`repro.workloads` is a finding at the call site.  Seeded
``random.Random(seed)`` streams are clean sources by design -- they
are exactly how the project does randomness.

The analysis is flow-insensitive within a function (a name once
tainted stays tainted) and propagates across functions through the
call graph: a function returning taint taints its callers' values, a
function forwarding a parameter propagates its callers' argument
taint one level.  Extraction happens once per file (the facts ride in
the cached :class:`~repro.analysis.graph.FileSummary`); the fixpoint
runs per lint over the whole-program model.
"""

from __future__ import annotations

import ast
from typing import Any, Iterable

from repro.analysis.core import (
    Checker,
    Finding,
    SourceFile,
    register_checker,
)
from repro.analysis.graph import call_desc, call_key

#: Module prefixes whose call sites are determinism *sinks*.
SINK_PREFIXES = ("repro.engine", "repro.sweep", "repro.sim",
                 "repro.workloads")

#: Wall-clock reads on the ``time`` module.
_TIME_SOURCES = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns",
    "process_time", "process_time_ns",
})

#: ``random`` attributes that are *not* taint sources: constructing a
#: seeded generator is the sanctioned way to randomize.
_RANDOM_CLEAN = frozenset({"Random", "SystemRandom"})

_DATETIME_SOURCES = frozenset({"now", "utcnow", "today"})
_UUID_SOURCES = frozenset({"uuid1", "uuid4"})


def in_sink_scope(module: str) -> bool:
    """Is ``module`` inside a determinism-sink package (exact dots)?"""
    return any(module == prefix or module.startswith(prefix + ".")
               for prefix in SINK_PREFIXES)


def _bindings(source: SourceFile) -> dict[str, tuple[str, str | None]]:
    """``{bound name: (module, original attr or None)}`` per file.

    ``import time`` binds ``time -> ("time", None)``; ``from time
    import monotonic as mono`` binds ``mono -> ("time",
    "monotonic")``.
    """
    bound: dict[str, tuple[str, str | None]] = {}
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                bound[name] = (target, None)
        elif isinstance(node, ast.ImportFrom) and not node.level:
            for alias in node.names:
                if alias.name != "*":
                    bound[alias.asname or alias.name] = \
                        (node.module or "", alias.name)
    return bound


def _is_source_path(path: list[str],
                    bindings: dict[str, tuple[str, str | None]]) -> bool:
    """Is this dotted call path a process-wide nondeterminism read?"""
    head = bindings.get(path[0])
    if head is None:
        return False
    module, original = head
    attrs = ([original] if original is not None else []) + path[1:]
    if not attrs:
        return False
    if module == "random":
        return attrs[0] not in _RANDOM_CLEAN
    if module == "time":
        return attrs[0] in _TIME_SOURCES
    if module == "os":
        return attrs[0] == "urandom"
    if module == "uuid":
        return attrs[0] in _UUID_SOURCES
    if module == "datetime":
        # import datetime; datetime.datetime.now() or
        # from datetime import datetime/date; datetime.now().
        return attrs[-1] in _DATETIME_SOURCES
    return False


# -- per-function extraction -------------------------------------------------
#
# Taint *atoms* (JSON-able, ride in FileSummary.functions[..]["taint"]):
#   ["src"]           -- directly derived from a nondeterminism read
#   ["param", name]   -- derived from parameter `name` (caller decides)
#   ["call", desc]    -- derived from this call's return value


def _atom_key(atom: list) -> str:
    if atom[0] == "call":
        return "call:" + call_key(atom[1])
    return ":".join(atom[:2])


class _FunctionTaint:
    """One pass over a function body collecting taint facts."""

    def __init__(self, bindings: dict[str, tuple[str, str | None]],
                 func: ast.AST) -> None:
        self.bindings = bindings
        self.func = func
        self.local: dict[str, list[list]] = {}
        self.ret: dict[str, list] = {}
        self.flows: list[dict[str, Any]] = []

    def _merge(self, *atom_sets: list[list]) -> list[list]:
        merged: dict[str, list] = {}
        for atoms in atom_sets:
            for atom in atoms:
                merged[_atom_key(atom)] = atom
        return list(merged.values())

    def atoms_of(self, node: ast.expr) -> list[list]:
        """Taint atoms a value expression may carry."""
        if isinstance(node, ast.Name):
            return self.local.get(node.id, [])
        if isinstance(node, ast.Call):
            return self._call_atoms(node)
        if isinstance(node, (ast.BinOp,)):
            return self._merge(self.atoms_of(node.left),
                               self.atoms_of(node.right))
        if isinstance(node, ast.UnaryOp):
            return self.atoms_of(node.operand)
        if isinstance(node, ast.IfExp):
            return self._merge(self.atoms_of(node.body),
                               self.atoms_of(node.orelse))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return self._merge(*(self.atoms_of(e) for e in node.elts))
        if isinstance(node, ast.Starred):
            return self.atoms_of(node.value)
        if isinstance(node, ast.Subscript):
            return self.atoms_of(node.value)
        if isinstance(node, ast.Attribute):
            # `tainted.attr` stays tainted; module-attr reads like
            # `math.pi` root at a clean Name and resolve to [].
            return self.atoms_of(node.value)
        if isinstance(node, ast.Compare):
            return self._merge(self.atoms_of(node.left),
                               *(self.atoms_of(c)
                                 for c in node.comparators))
        if isinstance(node, ast.JoinedStr):
            parts = [v.value for v in node.values
                     if isinstance(v, ast.FormattedValue)]
            return self._merge(*(self.atoms_of(p) for p in parts))
        return []

    def _call_atoms(self, node: ast.Call) -> list[list]:
        desc = call_desc(node)
        arg_atom_sets = [self.atoms_of(arg) for arg in node.args]
        kw_atom_sets = [self.atoms_of(kw.value)
                        for kw in node.keywords]
        if desc is not None and not desc.get("self") \
                and _is_source_path(desc["path"], self.bindings):
            return [["src"]]
        if desc is not None:
            args = [self._merge(atoms) for atoms in arg_atom_sets]
            if any(args) or any(kw_atom_sets):
                self.flows.append({
                    "call": desc,
                    "args": args,
                    "kw_tainted": bool(any(kw_atom_sets)),
                })
        result = self._merge(*arg_atom_sets, *kw_atom_sets)
        if desc is not None:
            result = self._merge(result, [["call", desc]])
        return result

    def run(self) -> dict[str, Any]:
        args = self.func.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            if arg.arg != "self":
                self.local[arg.arg] = [["param", arg.arg]]
        # Two sweeps give loop-carried taint a chance to settle.
        for _ in range(2):
            self._sweep(self.func)
        params = [a.arg for a in
                  (args.posonlyargs + args.args + args.kwonlyargs)
                  if a.arg != "self"]
        return {"params": params,
                "ret": sorted(self.ret.values(), key=_atom_key),
                "flows": self.flows}

    def _sweep(self, root: ast.AST) -> None:
        self.flows = []

        def visit(node: ast.AST) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)) and node is not root:
                return
            if isinstance(node, ast.Assign):
                atoms = self.atoms_of(node.value)
                for target in node.targets:
                    self._bind(target, atoms)
            elif isinstance(node, ast.AnnAssign) \
                    and node.value is not None:
                self._bind(node.target, self.atoms_of(node.value))
            elif isinstance(node, ast.AugAssign):
                atoms = self._merge(self.atoms_of(node.value),
                                    self.atoms_of(node.target))
                self._bind(node.target, atoms)
            elif isinstance(node, ast.For):
                self._bind(node.target, self.atoms_of(node.iter))
            elif isinstance(node, ast.Return) \
                    and node.value is not None:
                for atom in self.atoms_of(node.value):
                    self.ret[_atom_key(atom)] = atom
            elif isinstance(node, ast.Expr):
                self.atoms_of(node.value)  # record flows
            elif isinstance(node, (ast.If, ast.While)):
                self.atoms_of(node.test)
            for child in ast.iter_child_nodes(node):
                visit(child)

        body = root.body if isinstance(root.body, list) else [root.body]
        for stmt in body:
            visit(stmt)

    def _bind(self, target: ast.expr, atoms: list[list]) -> None:
        if isinstance(target, ast.Name):
            if atoms:
                self.local[target.id] = \
                    self._merge(self.local.get(target.id, []), atoms)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, atoms)


def extract_taint(source: SourceFile, func: ast.AST) -> dict[str, Any]:
    """The taint facts of one function (plugged into ``summarize``)."""
    return _FunctionTaint(_bindings(source), func).run()


# -- the whole-program fixpoint ----------------------------------------------


@register_checker
class TaintFlowChecker(Checker):
    code = "SCAR007"
    name = "rng-taint-flow"
    description = ("no value derived from process-wide random / "
                   "wall-clock / os.urandom flows into repro.engine, "
                   "repro.sweep, repro.sim or repro.workloads call "
                   "sites; seeded Random(...) streams are clean")

    def check_program(self, program: Any) -> Iterable[Finding]:
        tainted_returns = self._tainted_returns(program)
        findings: list[Finding] = []
        for func_id, module, cls, facts in program.functions():
            taint = facts.get("taint")
            if taint is None:
                continue
            if in_sink_scope(module):
                # Inside the sink modules SCAR002 already polices
                # sources directly; flows between sink functions would
                # double-report every internal helper call.
                continue
            for flow in taint.get("flows", ()):
                finding = self._check_flow(
                    program, module, cls, flow, tainted_returns)
                if finding is not None:
                    findings.append(finding)
        return findings

    # A call's return is tainted when the callee (transitively)
    # returns something derived from a source.  Parameter-derived
    # returns are resolved at the call site, one level deep.

    def _tainted_returns(self, program: Any) -> set[str]:
        ret_atoms: dict[str, list] = {}
        for func_id, module, cls, facts in program.functions():
            taint = facts.get("taint")
            if taint is not None:
                ret_atoms[func_id] = [
                    (atom, module, cls) for atom in taint["ret"]]
        tainted: set[str] = set()
        changed = True
        while changed:
            changed = False
            for func_id, atoms in ret_atoms.items():
                if func_id in tainted:
                    continue
                for atom, module, cls in atoms:
                    if atom[0] == "src":
                        tainted.add(func_id)
                        changed = True
                        break
                    if atom[0] == "call":
                        target = program.resolve_call(
                            module, cls, atom[1])
                        if target in tainted:
                            tainted.add(func_id)
                            changed = True
                            break
        return tainted

    def _atom_tainted(self, program: Any, module: str,
                      cls: str | None, atom: list,
                      tainted_returns: set[str]) -> bool:
        if atom[0] == "src":
            return True
        if atom[0] == "call":
            target = program.resolve_call(module, cls, atom[1])
            return target in tainted_returns
        return False  # param taint needs the caller's caller: 1 level

    def _check_flow(self, program: Any, module: str, cls: str | None,
                    flow: dict[str, Any],
                    tainted_returns: set[str]) -> Finding | None:
        desc = flow["call"]
        target = program.resolve_call(module, cls, desc)
        if target is None:
            return None
        target_module = target.partition(":")[0]
        if not in_sink_scope(target_module):
            return None
        hot_args = [
            index for index, atoms in enumerate(flow.get("args", ()))
            if any(self._atom_tainted(program, module, cls, atom,
                                      tainted_returns)
                   for atom in atoms)]
        if not hot_args:
            return None
        summary = program.summaries[module]
        arg_list = ", ".join(f"arg {i}" for i in hot_args)
        return Finding(
            code=self.code,
            message=(f"nondeterministic value ({arg_list}) flows into "
                     f"{target_module} via {call_key(desc)}(); derive "
                     f"it from a seeded random.Random stream instead"),
            path=summary.path, line=desc["line"], col=desc["col"])
