"""SCAR005: registered plugin names stay reachable and documented.

Policies, engine backends (and future registries, e.g. topologies)
register by name through decorators::

    @register_policy("scar")
    @register_backend("process")

A name that is registered but not selectable from the CLI, or not
mentioned anywhere in README.md/DESIGN.md, is drift: users cannot
discover it and docs rot silently.  The CLI exposes each registry
*dynamically* (``--policy`` choices come from
``DEFAULT_REGISTRY.names()``, ``--backend`` choices from
``backend_names()``), so CLI reachability is checked structurally: the
registry's choices call must appear in ``repro.cli``.  Documentation
coverage is literal: each registered name must appear in README.md or
DESIGN.md under the lint root.

Both halves degrade gracefully on partial lints: without ``repro.cli``
in the checked set the CLI check is skipped, and without README/DESIGN
under the root the docs check is skipped.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.core import (
    Checker,
    Finding,
    SourceFile,
    register_checker,
)

#: registrar call -> (registry label, the dynamic-choices expression
#: the CLI must contain for names of this registry to be selectable).
_REGISTRARS: dict[str, tuple[str, str]] = {
    "register_policy": ("policy", "DEFAULT_REGISTRY.names()"),
    "register_backend": ("backend", "backend_names()"),
    "register_topology": ("topology", "topology_names()"),
}

_CLI_MODULE = "repro.cli"
_DOC_FILES = ("README.md", "DESIGN.md")


def _registrations(sources: Sequence[SourceFile]) \
        -> Iterator[tuple[str, str, SourceFile, ast.Call]]:
    """Every ``register_*("name")`` call: (registrar, name, file, node)."""
    for source in sources:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            registrar = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if registrar not in _REGISTRARS:
                continue
            if node.args and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                yield registrar, node.args[0].value, source, node


@register_checker
class RegistryDriftChecker(Checker):
    code = "SCAR005"
    name = "registry-drift"
    description = ("every @register_policy/@register_backend/"
                   "@register_topology name is reachable from the CLI "
                   "choices and mentioned in README.md/DESIGN.md")

    def check_project(self, sources: Sequence[SourceFile],
                      root: Path) -> Iterable[Finding]:
        cli = next((source for source in sources
                    if source.module == _CLI_MODULE), None)
        docs = "\n".join(
            (root / name).read_text(encoding="utf-8")
            for name in _DOC_FILES if (root / name).is_file())
        findings: list[Finding] = []
        for registrar, name, source, node in _registrations(sources):
            label, choices_expr = _REGISTRARS[registrar]
            if cli is not None and choices_expr not in cli.text:
                findings.append(source.finding(
                    self.code,
                    f"{label} {name!r} is not reachable from the CLI: "
                    f"repro.cli never builds choices from "
                    f"{choices_expr}", node))
            if docs and not re.search(
                    rf"(?<![A-Za-z0-9_]){re.escape(name)}"
                    rf"(?![A-Za-z0-9_])", docs):
                findings.append(source.finding(
                    self.code,
                    f"{label} {name!r} is registered but never "
                    f"mentioned in {' / '.join(_DOC_FILES)}", node))
        return findings
