"""SCAR005: registered plugin names stay reachable and documented.

Policies, engine backends (and future registries, e.g. topologies)
register by name through decorators::

    @register_policy("scar")
    @register_backend("process")

A name that is registered but not selectable from the CLI, or not
mentioned anywhere in README.md/DESIGN.md, is drift: users cannot
discover it and docs rot silently.  The CLI exposes each registry
*dynamically* (``--policy`` choices come from
``DEFAULT_REGISTRY.names()``, ``--backend`` choices from
``backend_names()``), so CLI reachability is checked structurally: the
registry's choices call must appear in ``repro.cli``.  Documentation
coverage is literal: each registered name must appear in README.md or
DESIGN.md under the lint root.

Since PR 10 this runs as a whole-program pass: the registrations come
from the cached :class:`~repro.analysis.graph.FileSummary` facts (the
same extraction :mod:`repro.analysis.deadsyms` consumes for SCAR009's
reachability half) and the CLI is read as raw text, so a warm
incremental lint re-parses nothing for it.

Both halves degrade gracefully on partial lints: without ``repro.cli``
in the checked set the CLI check is skipped, and without README/DESIGN
under the root the docs check is skipped.
"""

from __future__ import annotations

import re
from typing import Any, Iterable

from repro.analysis.core import Checker, Finding, register_checker
from repro.analysis.graph import REGISTRARS

#: registry label -> the dynamic-choices expression the CLI must
#: contain for names of this registry to be selectable.
_CHOICES_EXPRS: dict[str, str] = {
    "policy": "DEFAULT_REGISTRY.names()",
    "backend": "backend_names()",
    "topology": "topology_names()",
}

_CLI_MODULE = "repro.cli"
_DOC_FILES = ("README.md", "DESIGN.md")


@register_checker
class RegistryDriftChecker(Checker):
    code = "SCAR005"
    name = "registry-drift"
    description = ("every @register_policy/@register_backend/"
                   "@register_topology name is reachable from the CLI "
                   "choices and mentioned in README.md/DESIGN.md")

    def check_program(self, program: Any) -> Iterable[Finding]:
        cli_text = program.text(_CLI_MODULE) \
            if _CLI_MODULE in program.modules else None
        docs = "\n".join(
            (program.root / name).read_text(encoding="utf-8")
            for name in _DOC_FILES
            if (program.root / name).is_file())
        findings: list[Finding] = []
        for module in sorted(program.summaries):
            summary = program.summaries[module]
            for registration in summary.registrations:
                label = REGISTRARS.get(registration["registrar"])
                if label is None:
                    continue
                name = registration["name"]
                choices_expr = _CHOICES_EXPRS[label]
                if cli_text is not None \
                        and choices_expr not in cli_text:
                    findings.append(Finding(
                        code=self.code,
                        message=(
                            f"{label} {name!r} is not reachable from "
                            f"the CLI: repro.cli never builds choices "
                            f"from {choices_expr}"),
                        path=summary.path,
                        line=registration["line"],
                        col=registration["col"]))
                if docs and not re.search(
                        rf"(?<![A-Za-z0-9_]){re.escape(name)}"
                        rf"(?![A-Za-z0-9_])", docs):
                    findings.append(Finding(
                        code=self.code,
                        message=(
                            f"{label} {name!r} is registered but "
                            f"never mentioned in "
                            f"{' / '.join(_DOC_FILES)}"),
                        path=summary.path,
                        line=registration["line"],
                        col=registration["col"]))
        return findings
