"""Project-invariant static analysis (the ``scar lint`` engine).

Six PRs of review-hardening distilled into a CI gate: a small
``ast``-visitor framework (:mod:`repro.analysis.core`) plus five
project-specific checkers guarding the conventions the codebase's
correctness actually rests on:

========  =================================================================
SCAR001   lock discipline: ``# guarded by: <lock>`` state only under
          ``with self.<lock>`` (:mod:`repro.analysis.locks`)
SCAR002   determinism: no process-wide RNG, wall-clock reads or bare-set
          iteration in kernel/sweep paths
          (:mod:`repro.analysis.determinism`)
SCAR003   wire envelope: document classes parse through
          ``wire.loads_document``/``check_envelope`` and emit ``kind``
          (:mod:`repro.analysis.envelope`)
SCAR004   error codes: the repro.errors / _ERROR_CODES / http mapping
          stays closed and ordered (:mod:`repro.analysis.errormap`)
SCAR005   registry drift: registered policy/backend names stay CLI-
          reachable and documented (:mod:`repro.analysis.registries`)
========  =================================================================

Findings suppress per line with ``# scar: noqa[CODE]``; reports render
as text or as the ``kind: "lint_report"`` wire document.  See DESIGN.md
"Static analysis" for the full contract and how to add a checker.
"""

from repro.analysis.core import (
    Checker,
    Finding,
    SourceFile,
    build_checkers,
    checker_codes,
    module_name_for,
    register_checker,
)

# Importing the checker modules registers them (same pattern as the
# built-in policies in repro.api.policies).
from repro.analysis import determinism as _determinism  # noqa: F401
from repro.analysis import envelope as _envelope  # noqa: F401
from repro.analysis import errormap as _errormap  # noqa: F401
from repro.analysis import locks as _locks  # noqa: F401
from repro.analysis import registries as _registries  # noqa: F401
from repro.analysis.report import REPORT_KIND, LintReport
from repro.analysis.runner import (
    iter_python_files,
    lint_paths,
    run_checkers,
)

__all__ = [
    "Checker",
    "Finding",
    "LintReport",
    "REPORT_KIND",
    "SourceFile",
    "build_checkers",
    "checker_codes",
    "iter_python_files",
    "lint_paths",
    "module_name_for",
    "register_checker",
    "run_checkers",
]
