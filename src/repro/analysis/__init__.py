"""Project-invariant static analysis (the ``scar lint`` engine).

Nine PRs of review-hardening distilled into a CI gate: an
``ast``-visitor framework (:mod:`repro.analysis.core`), a
whole-program model (:mod:`repro.analysis.graph`: import graph,
symbol table, call graph, lock-acquisition graph) and ten
project-specific checkers guarding the conventions the codebase's
correctness actually rests on:

========  =================================================================
SCAR001   lock discipline: ``# guarded by: <lock>`` state only under
          ``with self.<lock>`` (:mod:`repro.analysis.locks`)
SCAR002   determinism: no process-wide RNG, wall-clock reads or bare-set
          iteration in kernel/sweep paths
          (:mod:`repro.analysis.determinism`)
SCAR003   wire envelope: document classes parse through
          ``wire.loads_document``/``check_envelope`` and emit ``kind``
          (:mod:`repro.analysis.envelope`)
SCAR004   error codes: the repro.errors / _ERROR_CODES / http mapping
          stays closed and ordered (:mod:`repro.analysis.errormap`)
SCAR005   registry drift: registered policy/backend names stay CLI-
          reachable and documented (:mod:`repro.analysis.registries`)
SCAR006   lock-order deadlocks: the inter-procedural lock-acquisition
          graph stays acyclic (:mod:`repro.analysis.deadlock`)
SCAR007   RNG/wall-clock taint: nondeterministic values never flow
          into engine/sweep/sim/workloads call sites
          (:mod:`repro.analysis.taint`)
SCAR008   wire-schema drift: emitted/parsed fields per kind match the
          golden ``analysis/schemas.json``
          (:mod:`repro.analysis.schema`)
SCAR009   dead symbols: unused ``__all__`` exports, unreachable
          registrations, orphan suppressions
          (:mod:`repro.analysis.deadsyms`)
SCAR010   hot-path allocation: no per-iteration allocations in the
          innermost loops of ``# scar: hot`` modules
          (:mod:`repro.analysis.hotpath`)
========  =================================================================

Findings suppress per line with ``# scar: noqa[CODE]``; reports render
as text, GitHub annotations or the ``kind: "lint_report"`` wire
document.  Per-file results cache incrementally by content hash and
the per-file phase parallelizes across processes (``scar lint --jobs
N --cache PATH``).  See DESIGN.md "Static analysis" for the full
contract and how to add a checker.
"""

from repro.analysis.core import (
    Checker,
    Finding,
    SourceFile,
    build_checkers,
    checker_codes,
    module_name_for,
    register_checker,
)

# Importing the checker modules registers them (same pattern as the
# built-in policies in repro.api.policies).
from repro.analysis import deadlock as _deadlock  # noqa: F401
from repro.analysis import deadsyms as _deadsyms  # noqa: F401
from repro.analysis import determinism as _determinism  # noqa: F401
from repro.analysis import envelope as _envelope  # noqa: F401
from repro.analysis import errormap as _errormap  # noqa: F401
from repro.analysis import hotpath as _hotpath  # noqa: F401
from repro.analysis import locks as _locks  # noqa: F401
from repro.analysis import registries as _registries  # noqa: F401
from repro.analysis import schema as _schema  # noqa: F401
from repro.analysis import taint as _taint  # noqa: F401
from repro.analysis.cache import LintCache
from repro.analysis.graph import FileSummary, ProgramModel, summarize
from repro.analysis.report import (
    REPORT_KIND,
    LintReport,
    strip_nonidentity,
)
from repro.analysis.runner import (
    iter_python_files,
    lint_paths,
    run_checkers,
)

__all__ = [
    "Checker",
    "FileSummary",
    "Finding",
    "LintCache",
    "LintReport",
    "ProgramModel",
    "REPORT_KIND",
    "SourceFile",
    "build_checkers",
    "checker_codes",
    "iter_python_files",
    "lint_paths",
    "module_name_for",
    "register_checker",
    "run_checkers",
    "strip_nonidentity",
    "summarize",
]
