"""SCAR010: allocation discipline in ``# scar: hot`` modules.

The vectorized cost kernel (PR 9) exists because per-candidate python
allocations dominated scheduling time; this checker keeps them from
creeping back.  A module opts in with a ``# scar: hot`` comment
pragma (the three kernels: ``engine/evaluator.py``,
``engine/tensorkernel.py``, ``core/evalcache.py``) and the checker
then flags, **inside innermost loops only** (a loop containing no
other loop -- the iteration hot spot):

* container construction: dict/list/set displays and comprehensions
  build a fresh object every iteration;
* string formatting: f-strings, ``%``-formatting and ``.format()``
  allocate per iteration;
* repeated deep attribute loads: the same ``a.b.c`` chain (depth >= 2,
  value position) read more than once in one innermost loop -- hoist
  it to a local before the loop.

The rules are deliberately narrow: single-level attribute access,
method *calls* and one-off chains stay quiet, so ordinary code in a
hot module does not drown in findings.  Anything slower-but-clearer
that survives review gets a line-level ``# scar: noqa[SCAR010]``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import (
    Checker,
    Finding,
    SourceFile,
    register_checker,
)

_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp,
                   ast.GeneratorExp)


def _innermost_loops(tree: ast.Module) -> Iterator[ast.AST]:
    """Loops containing no other loop, in one linear pass."""
    loops: list[ast.AST] = []
    has_inner: set[int] = set()
    stack: list[ast.AST] = []

    def visit(node: ast.AST) -> None:
        is_loop = isinstance(node, _LOOPS)
        if is_loop:
            for enclosing in stack:
                has_inner.add(id(enclosing))
            stack.append(node)
            loops.append(node)
        for child in ast.iter_child_nodes(node):
            visit(child)
        if is_loop:
            stack.pop()

    visit(tree)
    return (loop for loop in loops if id(loop) not in has_inner)


def _attr_chain(node: ast.Attribute) -> tuple[str, ...] | None:
    """Dotted path of a pure-Name-rooted attribute load, else None."""
    parts = [node.attr]
    inner = node.value
    while isinstance(inner, ast.Attribute):
        parts.append(inner.attr)
        inner = inner.value
    if isinstance(inner, ast.Name):
        parts.append(inner.id)
        return tuple(reversed(parts))
    return None


@register_checker
class HotPathChecker(Checker):
    code = "SCAR010"
    name = "hot-path-allocation"
    description = ("no per-iteration dict/list/str-format allocation "
                   "or repeated deep attribute lookup in the "
                   "innermost loops of # scar: hot modules")

    def applies_to(self, source: SourceFile) -> bool:
        return source.has_hot_pragma()

    def check(self, source: SourceFile) -> Iterable[Finding]:
        findings: list[Finding] = []
        for loop in _innermost_loops(source.tree):
            findings.extend(self._check_loop(source, loop))
        findings.sort(key=lambda f: (f.line, f.col))
        return findings

    def _check_loop(self, source: SourceFile,
                    loop: ast.AST) -> Iterator[Finding]:
        chains: dict[tuple[str, ...], int] = {}
        body = getattr(loop, "body", []) + getattr(loop, "orelse", [])
        call_funcs: set[int] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute):
                    call_funcs.add(id(node.func))
        for stmt in body:
            for node in ast.walk(stmt):
                finding = self._allocation(source, node)
                if finding is not None:
                    yield finding
                if isinstance(node, ast.Attribute) \
                        and isinstance(node.ctx, ast.Load) \
                        and id(node) not in call_funcs:
                    yield from self._deep_lookup(source, node, chains)

    def _allocation(self, source: SourceFile,
                    node: ast.AST) -> Finding | None:
        if isinstance(node, (ast.Dict, ast.List, ast.Set)):
            kind = {ast.Dict: "dict", ast.List: "list",
                    ast.Set: "set"}[type(node)]
            if isinstance(node, (ast.List, ast.Set)) \
                    and not node.elts:
                pass  # empty displays are accumulator resets; allow
            elif isinstance(node, ast.Dict) and not node.keys:
                pass
            else:
                return source.finding(
                    self.code,
                    f"{kind} construction inside an innermost loop "
                    f"allocates every iteration; build it once "
                    f"outside or use a preallocated buffer", node)
        if isinstance(node, _COMPREHENSIONS):
            return source.finding(
                self.code,
                "comprehension inside an innermost loop allocates "
                "every iteration; hoist it or fuse the loops", node)
        if isinstance(node, ast.JoinedStr):
            return source.finding(
                self.code,
                "f-string inside an innermost loop formats every "
                "iteration; move formatting out of the hot loop",
                node)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod) \
                and isinstance(node.left, ast.Constant) \
                and isinstance(node.left.value, str):
            return source.finding(
                self.code,
                "%-formatting inside an innermost loop allocates "
                "every iteration; move formatting out of the hot "
                "loop", node)
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "format" \
                and isinstance(node.func.value, ast.Constant) \
                and isinstance(node.func.value.value, str):
            return source.finding(
                self.code,
                "str.format inside an innermost loop allocates every "
                "iteration; move formatting out of the hot loop",
                node)
        return None

    def _deep_lookup(self, source: SourceFile, node: ast.Attribute,
                     chains: dict[tuple[str, ...], int]
                     ) -> Iterator[Finding]:
        chain = _attr_chain(node)
        if chain is None or len(chain) < 3:
            return  # root name + >= 2 attrs, e.g. self.store.data
        seen = chains.get(chain, 0)
        chains[chain] = seen + 1
        if seen == 1:  # report once, at the second occurrence
            yield source.finding(
                self.code,
                f"attribute chain {'.'.join(chain)} is re-read "
                f"multiple times in one innermost loop; hoist it to "
                f"a local before the loop", node)
