"""The lint report: text rendering and the ``lint_report`` wire form.

A :class:`LintReport` is what one lint run produced: the surviving
findings, the ``# scar: noqa``-suppressed ones (kept visible -- a
suppression is a reviewed decision, not a deletion), and the run's
scope.  It round-trips through the same kind/version JSON envelope as
every other document in the system (``kind: "lint_report"``), so CI
artifacts and tooling consume it exactly like schedule results or job
records.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.core import Finding
from repro.api.wire import (
    WIRE_VERSION,
    check_envelope,
    loads_document,
)
from repro.errors import ConfigError

#: Document kind of the JSON lint report.
REPORT_KIND = "lint_report"


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run (``kind: "lint_report"`` on the wire).

    Version 2 of the document adds the run's performance facts:
    per-checker wall time (``timings``), incremental-cache hits and
    misses (``cache``), and the worker count (``jobs``).  They are
    observability fields, not identity --
    :func:`strip_nonidentity` zeroes them so two runs of the same
    tree compare byte-identical regardless of cache warmth or
    parallelism.
    """

    findings: tuple[Finding, ...] = ()
    suppressed: tuple[Finding, ...] = ()
    checked_files: int = 0
    codes: tuple[str, ...] = field(default_factory=tuple)
    # Run-performance fields are excluded from equality, the same
    # convention as ScheduleResult.perf: the *identity* of a lint run
    # is what was checked and what was found, never how fast.
    timings: dict[str, float] = field(default_factory=dict,
                                      compare=False)
    cache_hits: int = field(default=0, compare=False)
    cache_misses: int = field(default=0, compare=False)
    jobs: int = field(default=1, compare=False)

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        """Surviving findings per checker code, sorted by code."""
        counter = Counter(finding.code for finding in self.findings)
        return dict(sorted(counter.items()))

    # -- text form ---------------------------------------------------------

    def summary_line(self) -> str:
        per_code = ", ".join(f"{count} {code}"
                             for code, count in self.counts().items())
        head = f"{len(self.findings)} finding" \
               f"{'s' if len(self.findings) != 1 else ''}"
        if per_code:
            head += f" ({per_code})"
        return (f"{head} in {self.checked_files} file"
                f"{'s' if self.checked_files != 1 else ''}; "
                f"{len(self.suppressed)} suppressed")

    def render(self) -> str:
        lines = [finding.render() for finding in self.findings]
        lines.extend(f"{finding.render()} (suppressed)"
                     for finding in self.suppressed)
        lines.append(self.summary_line())
        return "\n".join(lines)

    def stats_lines(self) -> list[str]:
        """Human-readable run stats (``scar lint --stats``)."""
        total = self.cache_hits + self.cache_misses
        rate = (100.0 * self.cache_hits / total) if total else 0.0
        lines = [f"cache: {self.cache_hits} hit"
                 f"{'s' if self.cache_hits != 1 else ''}, "
                 f"{self.cache_misses} miss"
                 f"{'es' if self.cache_misses != 1 else ''} "
                 f"({rate:.0f}% hit rate), jobs: {self.jobs}"]
        for code in self.codes:
            lines.append(
                f"  {code}: {self.timings.get(code, 0.0) * 1e3:.1f} ms")
        return lines

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": REPORT_KIND,
            "version": WIRE_VERSION,
            "checked_files": self.checked_files,
            "codes": list(self.codes),
            "counts": self.counts(),  # derived; ignored by from_dict
            "findings": [finding.to_dict()
                         for finding in self.findings],
            "suppressed": [finding.to_dict()
                           for finding in self.suppressed],
            "timings": {code: self.timings.get(code, 0.0)
                        for code in self.codes},
            "cache": {"hits": self.cache_hits,
                      "misses": self.cache_misses},
            "jobs": self.jobs,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LintReport":
        check_envelope(data, REPORT_KIND)
        try:
            cache = data.get("cache", {})
            return cls(
                findings=tuple(Finding.from_dict(entry)
                               for entry in data["findings"]),
                suppressed=tuple(Finding.from_dict(entry)
                                 for entry in data["suppressed"]),
                checked_files=data["checked_files"],
                codes=tuple(data["codes"]),
                timings=dict(data.get("timings", {})),
                cache_hits=cache.get("hits", 0),
                cache_misses=cache.get("misses", 0),
                jobs=data.get("jobs", 1),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed lint report: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "LintReport":
        return cls.from_dict(loads_document(text, "lint report"))


def strip_nonidentity(document: dict[str, Any]) -> dict[str, Any]:
    """A copy of a ``lint_report`` document without run-performance
    fields, for byte-identity comparisons (same convention as
    ``repro.sim.metrics.strip_nonidentity``): per-checker timings are
    zeroed, cache hit/miss counters and the worker count reset.  The
    *identity* of a lint run -- what was checked and what was found --
    is everything that remains.
    """
    stripped = dict(document)
    stripped["timings"] = {code: 0.0
                           for code in document.get("timings", {})}
    stripped["cache"] = {"hits": 0, "misses": 0}
    stripped["jobs"] = 0
    return stripped
