"""Lint orchestration: discovery, incremental cache, parallel phases.

The engine runs in two phases:

* the **per-file phase** parses each source, runs the per-file
  checkers that apply to it, and distills the file into a
  :class:`~repro.analysis.graph.FileSummary`.  Its results depend
  only on the file's bytes and the enabled per-file codes, so they
  are cached by content hash (:mod:`repro.analysis.cache`) and can
  run in parallel worker processes (``scar lint --jobs N``, same
  initializer/worker idiom as the engine's process backend);
* the **program phase** assembles every summary into a
  :class:`~repro.analysis.graph.ProgramModel` and runs the
  whole-program checkers (deadlock, taint, schema drift, dead
  symbols).  It always runs -- cross-module facts cannot be cached
  per file -- but reads only summaries, parsing individual sources
  lazily when a checker asks.

A warm incremental run therefore re-parses only files whose content
hash changed *plus their import-graph dependents* (a changed module
can change what its importers' cross-module findings mean, so their
summaries are rebuilt from fresh parses), then re-runs the program
phase over mostly-cached summaries.

:func:`run_checkers` is the same engine over pre-built in-memory
:class:`~repro.analysis.core.SourceFile` objects -- what the checker
fixture tests drive -- minus discovery, cache and workers.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.analysis.cache import LintCache
from repro.analysis.core import (
    Checker,
    Finding,
    SourceFile,
    build_checkers,
)
from repro.analysis.deadsyms import orphan_noqa_findings
from repro.analysis.graph import FileSummary, ProgramModel, summarize
from repro.analysis.report import LintReport
from repro.analysis.taint import extract_taint
from repro.errors import AnalysisError

#: Directory names never descended into during discovery: caches,
#: VCS internals, virtualenvs and build detritus.
_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".venv", "venv", "build", "dist", ".eggs",
})


def _skip_part(part: str) -> bool:
    return part in _SKIP_DIRS or part.endswith(".egg-info")


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories to a sorted list of ``.py`` files.

    Skip-dir names are filtered at any nesting depth; symlinks are
    resolved *for deduplication only* (two spellings of one real file
    lint once) while the returned paths keep their given spelling, so
    findings render repo-relative.
    """
    files: list[Path] = []
    seen: set[Path] = set()

    def add(path: Path) -> None:
        try:
            real = path.resolve()
        except OSError:
            real = path
        if real not in seen:
            seen.add(real)
            files.append(path)

    for given in paths:
        path = Path(given)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(_skip_part(part)
                           for part in candidate.parts):
                    add(candidate)
        elif path.is_file():
            add(path)
        else:
            raise AnalysisError(f"no such file or directory: {path}")
    return sorted(files)


# -- the per-file phase ------------------------------------------------------


def _analyze_file(source: SourceFile,
                  checkers: Sequence[Checker]) -> dict[str, Any]:
    """Parse + per-file checks + summary for one source."""
    source.tree  # parse now: unparsable input is a lint error
    findings: list[Finding] = []
    timings: dict[str, float] = {}
    for checker in checkers:
        started = time.perf_counter()
        if checker.applies_to(source):
            findings.extend(checker.check(source))
        timings[checker.code] = \
            timings.get(checker.code, 0.0) \
            + (time.perf_counter() - started)
    summary = summarize(source, taint_extractor=extract_taint)
    return {
        "path": source.path,
        "hash": source.content_hash,
        "summary": summary.to_dict(),
        "findings": [finding.to_dict() for finding in findings],
        "timings": timings,
    }


# Worker-process state, set once per worker by the initializer (the
# same module-global idiom as repro.engine.backends._worker_init).
_WORKER: dict[str, Any] = {}


def _worker_init(per_file_codes: Sequence[str]) -> None:
    import repro.analysis  # noqa: F401  (registers the checkers)

    _WORKER["checkers"] = build_checkers(select=per_file_codes) \
        if per_file_codes else []


def _worker_lint(path: str) -> dict[str, Any]:
    try:
        source = SourceFile.load(path)
        return _analyze_file(source, _WORKER["checkers"])
    except AnalysisError as exc:
        return {"path": path, "error": str(exc)}


def _per_file_results(sources: Sequence[SourceFile],
                      checkers: Sequence[Checker],
                      jobs: int) -> dict[str, dict[str, Any]]:
    """Per-file phase over ``sources``, serial or process-parallel."""
    results: dict[str, dict[str, Any]] = {}
    per_file_codes = [checker.code for checker in checkers]
    if jobs > 1 and len(sources) > 1:
        with ProcessPoolExecutor(
                max_workers=min(jobs, len(sources)),
                initializer=_worker_init,
                initargs=(per_file_codes,)) as pool:
            for result in pool.map(
                    _worker_lint,
                    [source.path for source in sources],
                    chunksize=8):
                results[result["path"]] = result
    else:
        for source in sources:
            try:
                results[source.path] = _analyze_file(source, checkers)
            except AnalysisError as exc:
                results[source.path] = {"path": source.path,
                                        "error": str(exc)}
    for result in results.values():
        if "error" in result:
            raise AnalysisError(result["error"])
    return results


# -- cache validity ----------------------------------------------------------


def _valid_cache_entries(sources: Sequence[SourceFile],
                         cached: dict[str, dict[str, Any]],
                         per_file_codes: Sequence[str]
                         ) -> dict[str, dict[str, Any]]:
    """Entries reusable as-is: same hash, same per-file code set.

    Import-graph invalidation then *removes* entries whose module
    directly imports a changed module: their per-file results are
    still byte-valid (per-file checkers see only the file), but the
    engine's contract is that a touched file re-analyzes together
    with its direct importers, so their summaries are rebuilt from a
    fresh parse too.  Direct -- not transitive -- dependents keep the
    blast radius of a leaf edit proportional to its real fan-in; the
    whole-program phase re-runs over all summaries every lint anyway,
    so cross-module findings never go stale.
    """
    codes = list(per_file_codes)
    valid: dict[str, dict[str, Any]] = {}
    for source in sources:
        entry = cached.get(source.path)
        if entry is None:
            continue
        if entry.get("hash") != source.content_hash:
            continue
        if list(entry.get("codes", ())) != codes:
            continue
        valid[source.path] = entry
    module_set = {source.module for source in sources}
    changed = {source.module for source in sources
               if source.path not in valid}
    for source in sources:
        entry = valid.get(source.path)
        if entry is None:
            continue
        summary = FileSummary.from_dict(entry["summary"])
        if summary.project_imports(module_set) & changed:
            del valid[source.path]
    return valid


# -- assembly ----------------------------------------------------------------


def _fold_report(sources: Sequence[SourceFile],
                 raw: list[Finding],
                 enabled: Sequence[str],
                 directives: dict[str, dict[int, frozenset[str]]],
                 *,
                 timings: dict[str, float],
                 cache_hits: int, cache_misses: int,
                 jobs: int) -> LintReport:
    raw = raw + orphan_noqa_findings(directives, raw, enabled)
    raw.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    by_path = {source.path: source for source in sources}
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in raw:
        source = by_path.get(finding.path)
        if source is not None \
                and finding.code in source.noqa_codes(finding.line):
            suppressed.append(finding)
        else:
            findings.append(finding)
    return LintReport(
        findings=tuple(findings), suppressed=tuple(suppressed),
        checked_files=len(sources), codes=tuple(enabled),
        timings={code: timings.get(code, 0.0) for code in enabled},
        cache_hits=cache_hits, cache_misses=cache_misses, jobs=jobs)


def _run_program_phase(program: ProgramModel,
                       checkers: Sequence[Checker],
                       sources: Sequence[SourceFile],
                       timings: dict[str, float]) -> list[Finding]:
    findings: list[Finding] = []
    for checker in checkers:
        started = time.perf_counter()
        findings.extend(checker.check_program(program))
        if type(checker).check_project is not Checker.check_project:
            findings.extend(checker.check_project(list(sources),
                                                  program.root))
        timings[checker.code] = timings.get(checker.code, 0.0) \
            + (time.perf_counter() - started)
    return findings


def _directives_from_summary(summary: dict[str, Any]) \
        -> dict[int, frozenset[str]]:
    return {int(line): frozenset(codes)
            for line, codes in summary.get("noqa_lines", {}).items()}


def run_checkers(sources: Sequence[SourceFile], *,
                 select: Sequence[str] | None = None,
                 ignore: Sequence[str] | None = None,
                 root: str | Path | None = None) -> LintReport:
    """Run the selected checkers over in-memory sources (no cache)."""
    checkers = build_checkers(select, ignore)
    per_file = [c for c in checkers if type(c).is_per_file()]
    program_checkers = [c for c in checkers if type(c).is_program()]
    enabled = [checker.code for checker in checkers]
    root_path = Path(root) if root is not None else Path.cwd()
    timings: dict[str, float] = {}
    raw: list[Finding] = []
    directives: dict[str, dict[int, frozenset[str]]] = {}
    summaries: list[FileSummary] = []
    for source in sources:
        result = _analyze_file(source, per_file)
        raw.extend(Finding.from_dict(entry)
                   for entry in result["findings"])
        for code, spent in result["timings"].items():
            timings[code] = timings.get(code, 0.0) + spent
        directives[source.path] = \
            _directives_from_summary(result["summary"])
        summaries.append(FileSummary.from_dict(result["summary"]))
    by_module = {source.module: source for source in sources}
    program = ProgramModel(summaries, root_path,
                           load_source=by_module.__getitem__)
    raw.extend(_run_program_phase(program, program_checkers,
                                  sources, timings))
    return _fold_report(sources, raw, enabled, directives,
                        timings=timings, cache_hits=0,
                        cache_misses=len(sources), jobs=1)


def lint_paths(paths: Iterable[str | Path], *,
               select: Sequence[str] | None = None,
               ignore: Sequence[str] | None = None,
               root: str | Path | None = None,
               jobs: int = 1,
               cache_path: str | Path | None = None,
               update_schemas: bool = False) -> LintReport:
    """Lint files/directories (the ``scar lint`` engine).

    ``root`` anchors project-level checks that read repo files
    (README.md/DESIGN.md for SCAR005, ``analysis/schemas.json`` for
    SCAR008); it defaults to the working directory.  ``cache_path``
    enables the incremental per-file cache; ``jobs > 1`` fans the
    per-file phase out to worker processes.  ``update_schemas``
    regenerates the SCAR008 golden from the current tree before the
    program phase runs, so the run reports the *new* contract as
    clean.
    """
    root_path = Path(root) if root is not None else Path.cwd()
    checkers = build_checkers(select, ignore)
    per_file = [c for c in checkers if type(c).is_per_file()]
    program_checkers = [c for c in checkers if type(c).is_program()]
    enabled = [checker.code for checker in checkers]
    per_file_codes = [checker.code for checker in per_file]

    sources = [SourceFile.load(path)
               for path in iter_python_files(paths)]

    cache = LintCache(cache_path) if cache_path is not None else None
    cached = cache.load() if cache is not None else {}
    valid = _valid_cache_entries(sources, cached, per_file_codes)
    misses = [source for source in sources
              if source.path not in valid]

    timings: dict[str, float] = {}
    raw: list[Finding] = []
    directives: dict[str, dict[int, frozenset[str]]] = {}
    summaries: list[FileSummary] = []

    fresh = _per_file_results(misses, per_file, jobs)
    if cache is not None:
        with cache:
            for source in misses:
                result = fresh[source.path]
                cache.record({
                    "path": result["path"],
                    "hash": result["hash"],
                    "codes": per_file_codes,
                    "summary": result["summary"],
                    "findings": result["findings"],
                })
    for source in sources:
        result = valid.get(source.path) or fresh[source.path]
        raw.extend(Finding.from_dict(entry)
                   for entry in result["findings"])
        for code, spent in result.get("timings", {}).items():
            timings[code] = timings.get(code, 0.0) + spent
        directives[source.path] = \
            _directives_from_summary(result["summary"])
        summaries.append(FileSummary.from_dict(result["summary"]))

    by_module: dict[str, SourceFile] = {}
    for source in sources:
        by_module.setdefault(source.module, source)
    program = ProgramModel(summaries, root_path,
                           load_source=by_module.__getitem__)
    for source in misses:
        if by_module.get(source.module) is source:
            program.preload(source.module, source)
    if update_schemas:
        from repro.analysis.schema import write_golden

        write_golden(program, root_path)
    raw.extend(_run_program_phase(program, program_checkers,
                                  sources, timings))
    return _fold_report(sources, raw, enabled, directives,
                        timings=timings, cache_hits=len(valid),
                        cache_misses=len(misses), jobs=jobs)
