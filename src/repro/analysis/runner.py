"""Lint orchestration: discover files, run checkers, apply noqa.

:func:`lint_paths` is the ``scar lint`` entry point: expand the given
files/directories to python sources, parse them once, run every
selected checker (per-file passes on the files they apply to, project
passes once over the whole set) and fold ``# scar: noqa[CODE]``
suppressions into the report.  :func:`run_checkers` is the same engine
over pre-built :class:`~repro.analysis.core.SourceFile` objects --
what the checker tests drive with fixture snippets.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.core import (
    Finding,
    SourceFile,
    build_checkers,
)
from repro.analysis.report import LintReport
from repro.errors import AnalysisError

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git"})


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories to a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for given in paths:
        path = Path(given)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.add(candidate)
        elif path.is_file():
            files.add(path)
        else:
            raise AnalysisError(f"no such file or directory: {path}")
    return sorted(files)


def run_checkers(sources: Sequence[SourceFile], *,
                 select: Sequence[str] | None = None,
                 ignore: Sequence[str] | None = None,
                 root: str | Path | None = None) -> LintReport:
    """Run the selected checkers over ``sources`` and build the report."""
    checkers = build_checkers(select, ignore)
    root_path = Path(root) if root is not None else Path.cwd()
    by_path = {source.path: source for source in sources}
    raw: list[Finding] = []
    for checker in checkers:
        for source in sources:
            if checker.applies_to(source):
                raw.extend(checker.check(source))
        raw.extend(checker.check_project(sources, root_path))
    raw.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in raw:
        source = by_path.get(finding.path)
        if source is not None \
                and finding.code in source.noqa_codes(finding.line):
            suppressed.append(finding)
        else:
            findings.append(finding)
    return LintReport(findings=tuple(findings),
                      suppressed=tuple(suppressed),
                      checked_files=len(sources),
                      codes=tuple(checker.code for checker in checkers))


def lint_paths(paths: Iterable[str | Path], *,
               select: Sequence[str] | None = None,
               ignore: Sequence[str] | None = None,
               root: str | Path | None = None) -> LintReport:
    """Lint files/directories (the ``scar lint`` engine).

    ``root`` anchors project-level checks that read repo files
    (README.md/DESIGN.md for SCAR005); it defaults to the working
    directory, which is the repo root under ``scar lint src/``.
    """
    sources = [SourceFile.load(path)
               for path in iter_python_files(paths)]
    for source in sources:
        source.tree  # parse eagerly: unparsable input is a lint error
    return run_checkers(sources, select=select, ignore=ignore,
                        root=root)
