"""Content-hash-keyed incremental lint cache (JSONL, append-only).

Same durability idiom as :class:`repro.sweep.store.ResultStore`: one
JSON record per line, appended and flushed as produced, torn final
lines tolerated (a crash mid-write loses at most the entry being
written), duplicate paths resolved last-wins on load.  A cache file
can therefore be carried across runs (and across CI jobs via
``actions/cache``) without ever being rewritten in place.

Each record captures everything the per-file phase produced for one
source file at one content hash: the :class:`~repro.analysis.graph.\
FileSummary` (which the whole-program phase reads), the per-file
findings, and the checker codes that ran.  A record is *valid* for
reuse when the file's current hash matches and the per-file checker
selection is unchanged; import-graph invalidation (a changed module
dirties its dependents too) is the runner's job -- the cache itself
is a dumb log.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, TextIO

from repro.analysis.graph import SUMMARY_VERSION
from repro.errors import AnalysisError

#: Record-format version; bumped with FileSummary's shape.
CACHE_FORMAT = SUMMARY_VERSION


class LintCache:
    """Append-only per-file lint results keyed by content hash."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle: TextIO | None = None
        self.loaded = 0
        self.corrupt_lines = 0

    # -- reading -----------------------------------------------------------

    def load(self) -> dict[str, dict[str, Any]]:
        """Latest valid record per file path (last-wins)."""
        entries: dict[str, dict[str, Any]] = {}
        self.loaded = 0
        self.corrupt_lines = 0
        if not self.path.is_file():
            return entries
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(
                f"cannot read lint cache {self.path}: {exc}") from exc
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Torn tail or foreign garbage: skip, never fail.
                self.corrupt_lines += 1
                continue
            if not isinstance(record, dict) \
                    or record.get("format") != CACHE_FORMAT \
                    or "path" not in record:
                self.corrupt_lines += 1
                continue
            entries[record["path"]] = record
            self.loaded += 1
        return entries

    # -- writing -----------------------------------------------------------

    def record(self, entry: dict[str, Any]) -> None:
        """Append one per-file record (flushed per line)."""
        if self._handle is None:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a", encoding="utf-8")
            except OSError as exc:
                raise AnalysisError(
                    f"cannot open lint cache {self.path}: "
                    f"{exc}") from exc
        payload = dict(entry)
        payload["format"] = CACHE_FORMAT
        self._handle.write(
            json.dumps(payload, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "LintCache":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
