"""SCAR001: guarded state is only touched while holding its lock.

The concurrency-bearing classes (:class:`repro.api.session.Session`,
:class:`repro.service.scheduler.SchedulerService`) protect their mutable
bookkeeping with one mutex.  The convention is declarative:

* an attribute assigned in ``__init__`` with a ``# guarded by: _lock``
  comment on its assignment is *guarded* -- every other access to
  ``self.<attr>`` in that class must sit inside a ``with self._lock:``
  block (the comment names the lock attribute, so ``# guarded by:
  _mutex`` works too);
* alternatively a module-level ``_GUARDED`` registry declares guarded
  names for every class in the module: a set/tuple/list of attribute
  names (lock defaults to ``_lock``) or a ``{attr: lock}`` dict;
* methods whose name ends in ``_locked`` are documented as
  "caller holds the lock" and are exempt, as is ``__init__`` itself
  (no other thread can hold a reference during construction).

Nested functions defined inside a method do *not* inherit the enclosing
lock context: a closure can outlive the ``with`` block that created it
(handed to a thread or callback), so guarded access inside one is
flagged.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.analysis.core import (
    Checker,
    Finding,
    SourceFile,
    register_checker,
)

_GUARD_COMMENT_RE = re.compile(r"#\s*guarded by:\s*(?P<lock>\w+)")

#: Modules whose lock discipline is load-bearing (the service stack and
#: the session facade); files elsewhere opt in by declaring guards.
_SCOPE = ("repro.service", "repro.api.session")

_DEFAULT_LOCK = "_lock"


def _in_scope(module: str) -> bool:
    return any(module == prefix or module.startswith(prefix + ".")
               for prefix in _SCOPE)


def _module_guards(tree: ast.Module) -> dict[str, str]:
    """Parse a module-level ``_GUARDED`` registry into ``{attr: lock}``."""
    guards: dict[str, str] = {}
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(isinstance(t, ast.Name) and t.id == "_GUARDED"
                   for t in targets):
            continue
        if isinstance(value, ast.Dict):
            for key, lock in zip(value.keys, value.values):
                if isinstance(key, ast.Constant) \
                        and isinstance(key.value, str) \
                        and isinstance(lock, ast.Constant) \
                        and isinstance(lock.value, str):
                    guards[key.value] = lock.value
        elif isinstance(value, (ast.Set, ast.Tuple, ast.List)):
            for item in value.elts:
                if isinstance(item, ast.Constant) \
                        and isinstance(item.value, str):
                    guards[item.value] = _DEFAULT_LOCK
        elif isinstance(value, ast.Call):
            # frozenset({...}) / tuple([...]) wrappers.
            for arg in value.args:
                if isinstance(arg, (ast.Set, ast.Tuple, ast.List)):
                    for item in arg.elts:
                        if isinstance(item, ast.Constant) \
                                and isinstance(item.value, str):
                            guards[item.value] = _DEFAULT_LOCK
    return guards


def _self_attr(node: ast.AST) -> str | None:
    """``self.<attr>`` attribute name, else ``None``."""
    if isinstance(node, ast.Attribute) \
            and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None


def _init_guards(source: SourceFile,
                 init: ast.FunctionDef) -> dict[str, str]:
    """``{attr: lock}`` from ``# guarded by:`` comments in ``__init__``."""
    guards: dict[str, str] = {}
    for node in ast.walk(init):
        targets: list[ast.expr]
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        attrs = [attr for attr in map(_self_attr, targets)
                 if attr is not None]
        if not attrs:
            continue
        match = _GUARD_COMMENT_RE.search(source.node_lines(node))
        if match is None:
            continue
        for attr in attrs:
            guards[attr] = match.group("lock")
    return guards


def _acquired_locks(node: ast.With | ast.AsyncWith) -> frozenset[str]:
    """Lock attribute names a ``with`` statement takes (``self.X``)."""
    locks = set()
    for item in node.items:
        attr = _self_attr(item.context_expr)
        if attr is not None:
            locks.add(attr)
    return frozenset(locks)


@register_checker
class LockDisciplineChecker(Checker):
    code = "SCAR001"
    name = "lock-discipline"
    description = ("attributes declared `# guarded by: <lock>` (or in a "
                   "module-level _GUARDED registry) are only accessed "
                   "inside `with self.<lock>` blocks")

    def applies_to(self, source: SourceFile) -> bool:
        return _in_scope(source.module) \
            or "guarded by:" in source.text or "_GUARDED" in source.text

    def check(self, source: SourceFile) -> Iterable[Finding]:
        module_guards = _module_guards(source.tree)
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(
                    self._check_class(source, node, module_guards))
        return findings

    def _check_class(self, source: SourceFile, cls: ast.ClassDef,
                     module_guards: dict[str, str]) -> Iterator[Finding]:
        guards = dict(module_guards)
        for item in cls.body:
            if isinstance(item, ast.FunctionDef) \
                    and item.name == "__init__":
                guards.update(_init_guards(source, item))
        if not guards:
            return
        for item in cls.body:
            if not isinstance(item,
                              (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__" or item.name.endswith("_locked"):
                continue
            yield from self._check_body(source, cls.name, item.name,
                                        item.body, guards, frozenset())

    def _check_body(self, source: SourceFile, cls_name: str,
                    method: str, body: list[ast.stmt],
                    guards: dict[str, str],
                    held: frozenset[str]) -> Iterator[Finding]:
        for stmt in body:
            yield from self._check_node(source, cls_name, method, stmt,
                                        guards, held)

    def _check_node(self, source: SourceFile, cls_name: str,
                    method: str, node: ast.AST, guards: dict[str, str],
                    held: frozenset[str]) -> Iterator[Finding]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                yield from self._check_node(source, cls_name, method,
                                            item.context_expr, guards,
                                            held)
            inner = held | _acquired_locks(node)
            yield from self._check_body(source, cls_name, method,
                                        node.body, guards, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # A closure can outlive the lock scope that created it.
            body = node.body if isinstance(node.body, list) \
                else [ast.Expr(node.body)]
            yield from self._check_body(source, cls_name, method, body,
                                        guards, frozenset())
            return
        attr = _self_attr(node)
        if attr is not None and attr in guards \
                and guards[attr] not in held:
            lock = guards[attr]
            yield source.finding(
                self.code,
                f"`self.{attr}` is guarded by `{lock}` but "
                f"{cls_name}.{method} touches it outside "
                f"`with self.{lock}`", node)
        for child in ast.iter_child_nodes(node):
            yield from self._check_node(source, cls_name, method, child,
                                        guards, held)
