"""SCAR004: the exception/wire-code/HTTP mapping stays closed.

Every exception class in :mod:`repro.errors` must be mappable to a
stable wire code (the ``_ERROR_CODES`` table in
:mod:`repro.api.wire`) and every wire-facing code must resolve back to
a real exception class -- otherwise a service boundary either leaks
``internal_error`` for a typed failure or rebuilds the wrong exception
on the client.  Concretely, over the three modules:

* every :class:`~repro.errors.ReproError` subclass (and the base) has
  an ``_ERROR_CODES`` entry, and every entry names a class that exists;
* ``_ERROR_CODES`` is ordered most-derived first (the MRO walk in
  ``ErrorDocument.from_exception`` takes the first match, so an entry
  after its own subclass would shadow it);
* every class named in ``_CODE_TO_EXCEPTION`` and in
  ``service/http.py``'s ``_status_for`` isinstance chain exists in
  :mod:`repro.errors`;
* every literal code ``http.py`` puts on the wire via
  ``_send_error_doc`` is resolvable by clients through
  ``_CODE_TO_EXCEPTION``.

This checker runs once per lint as a whole-program pass, and only
when the errors/wire modules are both in the checked set.  It is a
model citizen of the incremental engine: it pulls exactly the three
modules it needs from the program model's lazy source loader, so a
warm run parses at most those three files for it.
"""

from __future__ import annotations

import ast
from typing import Any, Iterable, Iterator

from repro.analysis.core import (
    Checker,
    Finding,
    SourceFile,
    register_checker,
)

_ERRORS_MODULE = "repro.errors"
_WIRE_MODULE = "repro.api.wire"
_HTTP_MODULE = "repro.service.http"

_BASE_EXCEPTION = "ReproError"


def _assign_value(tree: ast.Module, name: str) \
        -> tuple[ast.expr, int] | None:
    """Module-level ``name = value`` (or annotated) value + line."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        if any(isinstance(t, ast.Name) and t.id == name
               for t in targets):
            value = node.value
            assert value is not None
            return value, node.lineno
    return None


def _exception_classes(tree: ast.Module) -> dict[str, list[str]]:
    """``{class name: base names}`` for ReproError's hierarchy."""
    bases: dict[str, list[str]] = {}
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            bases[node.name] = [base.id for base in node.bases
                                if isinstance(base, ast.Name)]
    reachable = {_BASE_EXCEPTION} if _BASE_EXCEPTION in bases else set()
    changed = True
    while changed:
        changed = False
        for name, parents in bases.items():
            if name not in reachable \
                    and any(parent in reachable for parent in parents):
                reachable.add(name)
                changed = True
    return {name: parents for name, parents in bases.items()
            if name in reachable}


def _ancestors(name: str, bases: dict[str, list[str]]) -> set[str]:
    seen: set[str] = set()
    frontier = list(bases.get(name, ()))
    while frontier:
        parent = frontier.pop()
        if parent in seen:
            continue
        seen.add(parent)
        frontier.extend(bases.get(parent, ()))
    return seen


def _codes_table(value: ast.expr) -> list[tuple[str, str, int]]:
    """``_ERROR_CODES`` entries as ``(class name, code, line)``."""
    entries = []
    if isinstance(value, (ast.Tuple, ast.List)):
        for item in value.elts:
            if isinstance(item, (ast.Tuple, ast.List)) \
                    and len(item.elts) == 2 \
                    and isinstance(item.elts[0], ast.Name) \
                    and isinstance(item.elts[1], ast.Constant):
                entries.append((item.elts[0].id,
                                str(item.elts[1].value), item.lineno))
    return entries


def _dict_literal_entries(value: ast.expr) \
        -> list[tuple[str, ast.expr, int]]:
    """Literal ``{code: Class}`` entries (``**`` unpacks are skipped)."""
    entries = []
    if isinstance(value, ast.Dict):
        for key, val in zip(value.keys, value.values):
            if key is not None and isinstance(key, ast.Constant):
                entries.append((str(key.value), val, val.lineno))
    return entries


@register_checker
class ErrorCodeChecker(Checker):
    code = "SCAR004"
    name = "error-code-mapping"
    description = ("every repro.errors exception has a wire code "
                   "(_ERROR_CODES, most-derived first), no orphan "
                   "codes, and http.py only emits resolvable codes")

    def check_program(self, program: Any) -> Iterable[Finding]:
        errors_src = program.source(_ERRORS_MODULE)
        wire_src = program.source(_WIRE_MODULE)
        if errors_src is None or wire_src is None:
            return ()
        findings = list(self._check_wire(errors_src, wire_src))
        http_src = program.source(_HTTP_MODULE)
        if http_src is not None:
            findings.extend(self._check_http(errors_src, wire_src,
                                             http_src))
        return findings

    def _check_wire(self, errors_src: SourceFile,
                    wire_src: SourceFile) -> Iterator[Finding]:
        bases = _exception_classes(errors_src.tree)
        table = _assign_value(wire_src.tree, "_ERROR_CODES")
        if table is None:
            yield wire_src.finding(
                self.code, "repro.api.wire must define the "
                "_ERROR_CODES exception-to-code table")
            return
        value, table_line = table
        entries = _codes_table(value)
        mapped = {name for name, _, _ in entries}
        for name in sorted(bases):
            if name not in mapped:
                yield wire_src.finding(
                    self.code,
                    f"exception {name} from repro.errors has no wire "
                    f"code in _ERROR_CODES", line=table_line)
        for name, code, line in entries:
            if name not in bases:
                yield wire_src.finding(
                    self.code,
                    f"orphan wire code {code!r}: {name} is not an "
                    f"exception class in repro.errors", line=line)
        for i, (earlier, _, _) in enumerate(entries):
            for name, _, line in entries[i + 1:]:
                if earlier in _ancestors(name, bases):
                    yield wire_src.finding(
                        self.code,
                        f"_ERROR_CODES entry {name} is shadowed by its "
                        f"base {earlier} listed first; most-derived "
                        f"entries must come first", line=line)
        reverse = _assign_value(wire_src.tree, "_CODE_TO_EXCEPTION")
        if reverse is not None:
            for code, val, line in _dict_literal_entries(reverse[0]):
                if isinstance(val, ast.Name) and val.id not in bases:
                    yield wire_src.finding(
                        self.code,
                        f"_CODE_TO_EXCEPTION maps {code!r} to {val.id}, "
                        f"which is not an exception class in "
                        f"repro.errors", line=line)

    def _check_http(self, errors_src: SourceFile, wire_src: SourceFile,
                    http_src: SourceFile) -> Iterator[Finding]:
        bases = _exception_classes(errors_src.tree)
        status_for = None
        for node in ast.walk(http_src.tree):
            if isinstance(node, ast.FunctionDef) \
                    and node.name == "_status_for":
                status_for = node
                break
        if status_for is None:
            yield http_src.finding(
                self.code, "service/http.py must define _status_for, "
                "the exception-to-HTTP-status mapping")
        else:
            for node in ast.walk(status_for):
                if isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Name) \
                        and node.func.id == "isinstance" \
                        and len(node.args) == 2 \
                        and isinstance(node.args[1], ast.Name) \
                        and node.args[1].id not in bases:
                    yield http_src.finding(
                        self.code,
                        f"_status_for checks {node.args[1].id}, which "
                        f"is not an exception class in repro.errors",
                        node)
        yield from self._check_http_codes(wire_src, http_src)

    def _check_http_codes(self, wire_src: SourceFile,
                          http_src: SourceFile) -> Iterator[Finding]:
        known = set()
        table = _assign_value(wire_src.tree, "_ERROR_CODES")
        if table is not None:
            known.update(code for _, code, _ in _codes_table(table[0]))
        reverse = _assign_value(wire_src.tree, "_CODE_TO_EXCEPTION")
        if reverse is not None:
            known.update(code for code, _, _
                         in _dict_literal_entries(reverse[0]))
        for node in ast.walk(http_src.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "_send_error_doc"
                    and len(node.args) >= 2
                    and isinstance(node.args[1], ast.Constant)):
                continue
            code = str(node.args[1].value)
            if code not in known:
                yield http_src.finding(
                    self.code,
                    f"http.py emits wire code {code!r} with no "
                    f"_CODE_TO_EXCEPTION entry; clients cannot rebuild "
                    f"a typed exception from it", node.args[1])
