"""The cross-module program model behind the whole-program checkers.

One pass over each file (:func:`summarize`) distills its AST into a
JSON-serializable :class:`FileSummary`: the module's imports, exports,
registry registrations, class/function inventory, per-function lock
acquisitions and call sites, taint facts and wire-schema fragments.
Summaries are what the incremental cache persists -- a warm re-lint
rebuilds the whole-program view without re-parsing unchanged files.

:class:`ProgramModel` stitches the summaries together:

* the **import graph** (module -> project modules it imports) and its
  reverse (:meth:`ProgramModel.dependents`), which drives incremental
  invalidation -- a changed file dirties itself plus everything that
  imports it;
* a **symbol table** (module-level defs, classes and methods,
  ``__all__`` exports, ``@register_*`` registrations);
* the **call graph**: dotted call paths resolved through import
  aliases, ``from``-imports (one re-export hop) and per-class
  attribute types to ``module:Qual.name`` function ids;
* the **lock-acquisition graph** consumed by SCAR006: which locks each
  function takes directly (``with self._lock:``), propagated through
  resolved calls to a transitive closure.

The model is deliberately static and conservative: dynamic dispatch,
monkey-patching and ``getattr`` strings resolve to nothing rather than
to wrong edges, so program checkers err on the quiet side.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

from repro.analysis.core import SourceFile

#: Bumped whenever summary extraction changes shape; cached entries
#: from another version are discarded wholesale.
SUMMARY_VERSION = 1

#: ``threading`` constructors whose instances count as locks.  The
#: reentrant ones may legally self-nest; plain ``Lock`` may not.
_LOCK_CTORS = frozenset({"Lock", "RLock", "Condition"})
_REENTRANT_CTORS = frozenset({"RLock", "Condition"})


# -- call descriptors --------------------------------------------------------
#
# A call site is recorded as its dotted path plus whether the path is
# rooted at ``self``:  ``run(x)`` -> ["run"],  ``templates.build(...)``
# -> ["templates", "build"],  ``self._session.submit(...)`` ->
# ["_session", "submit"] with self_rooted=True.  JSON form:
# ``[path..., line, col, self_rooted]`` flattened into a dict.


def _call_path(func: ast.expr) -> tuple[list[str], bool] | None:
    """Dotted path of a call target (``None`` when not name-rooted)."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        if node.id == "self":
            if not parts:
                return None
            return list(reversed(parts)), True
        parts.append(node.id)
        return list(reversed(parts)), False
    return None


def call_desc(node: ast.Call) -> dict[str, Any] | None:
    """JSON-able descriptor of one call site (``None`` = unresolvable)."""
    path = _call_path(node.func)
    if path is None:
        return None
    parts, self_rooted = path
    return {"path": parts, "self": self_rooted,
            "line": node.lineno, "col": node.col_offset}


def call_key(desc: dict[str, Any]) -> str:
    """Stable identity of a call target (ignores the call site)."""
    prefix = "self." if desc.get("self") else ""
    return prefix + ".".join(desc["path"])


# -- per-file summaries ------------------------------------------------------


@dataclass
class FileSummary:
    """Everything the program checkers need from one parsed file."""

    path: str
    module: str
    content_hash: str
    imports: dict[str, str] = field(default_factory=dict)
    from_imports: list[list[str]] = field(default_factory=list)
    constants: dict[str, str] = field(default_factory=dict)
    assigns: list[str] = field(default_factory=list)
    exports: list[str] = field(default_factory=list)
    exports_line: int = 0
    registrations: list[dict[str, Any]] = field(default_factory=list)
    classes: dict[str, dict[str, Any]] = field(default_factory=dict)
    functions: dict[str, dict[str, Any]] = field(default_factory=dict)
    uses: list[list[str]] = field(default_factory=list)
    emitters: list[dict[str, Any]] = field(default_factory=list)
    noqa_lines: dict[str, list[str]] = field(default_factory=dict)
    hot_pragma: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path, "module": self.module,
            "content_hash": self.content_hash, "imports": self.imports,
            "from_imports": self.from_imports,
            "constants": self.constants, "assigns": self.assigns,
            "exports": self.exports,
            "exports_line": self.exports_line,
            "registrations": self.registrations, "classes": self.classes,
            "functions": self.functions, "uses": self.uses,
            "emitters": self.emitters, "noqa_lines": self.noqa_lines,
            "hot_pragma": self.hot_pragma,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FileSummary":
        return cls(**data)

    def project_imports(self, modules: set[str]) -> set[str]:
        """Modules of this project this file imports (direct deps)."""
        deps: set[str] = set()
        for target in self.imports.values():
            deps.update(_module_prefixes(target, modules))
        for entry in self.from_imports:
            target, name = entry[0], entry[1]
            deps.update(_module_prefixes(target, modules))
            if f"{target}.{name}" in modules:
                deps.add(f"{target}.{name}")
        deps.discard(self.module)
        return deps


def _module_prefixes(dotted: str, modules: set[str]) -> set[str]:
    """Project modules ``dotted`` resolves through (incl. packages)."""
    found = set()
    parts = dotted.split(".")
    for stop in range(1, len(parts) + 1):
        prefix = ".".join(parts[:stop])
        if prefix in modules:
            found.add(prefix)
    return found


def _resolve_relative(module: str, level: int, target: str | None) -> str:
    """Absolute module of a ``from . import x``-style import."""
    base = module.split(".")
    # level=1 strips the module's own name (package __init__ keeps it).
    trimmed = base[:len(base) - level] if level <= len(base) else []
    if target:
        trimmed.append(target)
    return ".".join(trimmed)


def _annotation_name(node: ast.expr | None) -> str | None:
    """Class name of a simple annotation (``T``, ``T | None``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return (_annotation_name(node.left)
                or _annotation_name(node.right))
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotations ("Session") are common under
        # `from __future__ import annotations`.
        return node.value if node.value.isidentifier() else None
    return None


def _self_attr(node: ast.AST) -> str | None:
    if isinstance(node, ast.Attribute) \
            and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None


def _const_str(node: ast.expr | None,
               constants: dict[str, str]) -> str | None:
    """A string constant, directly or through a module-level name."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return constants.get(node.id)
    return None


# -- extraction walkers ------------------------------------------------------


def _collect_module_level(source: SourceFile,
                          summary: FileSummary) -> None:
    """Imports, constants, ``__all__`` and top-level symbol inventory."""
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                summary.imports[bound] = target
                if alias.asname is None and "." in alias.name:
                    # `import a.b` binds `a` but imports a.b: record
                    # the full target as a dependency-only edge.
                    summary.from_imports.append(
                        [alias.name.rsplit(".", 1)[0],
                         alias.name.rsplit(".", 1)[1], ""])
        elif isinstance(node, ast.ImportFrom):
            target = node.module or ""
            if node.level:
                target = _resolve_relative(summary.module, node.level,
                                           node.module)
            for alias in node.names:
                if alias.name == "*":
                    continue
                summary.from_imports.append(
                    [target, alias.name, alias.asname or alias.name])
    for node in source.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names or value is None:
            continue
        for name in names:
            if name not in summary.assigns:
                summary.assigns.append(name)
        if isinstance(value, ast.Constant) \
                and isinstance(value.value, str):
            for name in names:
                summary.constants[name] = value.value
        if "__all__" in names and isinstance(value,
                                             (ast.List, ast.Tuple)):
            summary.exports = [
                item.value for item in value.elts
                if isinstance(item, ast.Constant)
                and isinstance(item.value, str)]
            summary.exports_line = node.lineno


#: registrar name -> registry label (shared with SCAR005/SCAR009).
REGISTRARS: dict[str, str] = {
    "register_policy": "policy",
    "register_backend": "backend",
    "register_topology": "topology",
}


def _collect_registrations(source: SourceFile,
                           summary: FileSummary) -> None:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        registrar = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if registrar not in REGISTRARS:
            continue
        if node.args and isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, str):
            summary.registrations.append(
                {"registrar": registrar, "name": node.args[0].value,
                 "line": node.lineno, "col": node.col_offset})


def _collect_uses(source: SourceFile, summary: FileSummary) -> None:
    """Attribute loads rooted at import aliases (export-usage facts).

    ``wire.WIRE_VERSION`` with ``from repro.api import wire`` records
    the pair ``(repro.api.wire, WIRE_VERSION)`` -- resolved later, once
    the model knows which dotted prefixes are project modules.  Stored
    raw as ``[root_alias, attr, ...]`` paths.
    """
    seen: set[tuple[str, ...]] = set()
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Attribute) \
                or not isinstance(node.ctx, ast.Load):
            continue
        parts: list[str] = [node.attr]
        inner = node.value
        while isinstance(inner, ast.Attribute):
            parts.append(inner.attr)
            inner = inner.value
        if not isinstance(inner, ast.Name) or inner.id == "self":
            continue
        parts.append(inner.id)
        path = tuple(reversed(parts))
        if path not in seen:
            seen.add(path)
            summary.uses.append(list(path))


def _lock_attrs_of_class(source: SourceFile,
                         cls: ast.ClassDef) -> dict[str, bool]:
    """``{lock attr: reentrant?}`` declared in ``__init__``.

    A lock is an attribute assigned ``threading.Lock()`` / ``RLock()``
    / ``Condition()`` (bare or module-qualified), plus any lock named
    by a ``# guarded by: <lock>`` comment -- the existing SCAR001
    annotations seed the deadlock analysis, reentrancy unknown locks
    default to reentrant (quiet side).
    """
    locks: dict[str, bool] = {}
    for item in cls.body:
        if not isinstance(item, ast.FunctionDef) \
                or item.name != "__init__":
            continue
        for node in ast.walk(item):
            if not isinstance(node, ast.Assign):
                continue
            attrs = [a for a in map(_self_attr, node.targets)
                     if a is not None]
            if not attrs or not isinstance(node.value, ast.Call):
                continue
            func = node.value.func
            ctor = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if ctor in _LOCK_CTORS:
                for attr in attrs:
                    locks[attr] = ctor in _REENTRANT_CTORS
    import re as _re
    for match in _re.finditer(r"#\s*guarded by:\s*(\w+)",
                              source.text):
        locks.setdefault(match.group(1), True)
    return locks


def _attr_types(cls: ast.ClassDef) -> dict[str, str]:
    """``{self attr: class name as written}`` from ``__init__``.

    Both forms count: ``self.x = Session(...)`` (constructor call) and
    ``self.x = session`` where the ``session`` parameter is annotated
    ``Session`` (optionally ``| None``).
    """
    types: dict[str, str] = {}
    for item in cls.body:
        if not isinstance(item, ast.FunctionDef) \
                or item.name != "__init__":
            continue
        params: dict[str, str] = {}
        args = item.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            name = _annotation_name(arg.annotation)
            if name is not None:
                params[arg.arg] = name
        for node in ast.walk(item):
            if not isinstance(node, ast.Assign):
                continue
            attrs = [a for a in map(_self_attr, node.targets)
                     if a is not None]
            if not attrs:
                continue
            typename: str | None = None
            value = node.value
            if isinstance(value, ast.Call) \
                    and isinstance(value.func, ast.Name) \
                    and value.func.id[:1].isupper():
                typename = value.func.id
            elif isinstance(value, ast.Name):
                typename = params.get(value.id)
            if typename is not None:
                for attr in attrs:
                    types[attr] = typename
    return types


def _function_facts(source: SourceFile, func: ast.AST,
                    taint_extractor: Callable | None) -> dict[str, Any]:
    """Call sites, lock acquisitions and taint facts of one function.

    Nested function bodies are excluded from lock regions (a closure
    can outlive the ``with`` that created it -- same rule as SCAR001)
    but their calls still count toward the call graph via their own
    entries.
    """
    calls: list[dict[str, Any]] = []
    acquires: list[dict[str, Any]] = []
    lock_pairs: list[dict[str, Any]] = []
    locked_calls: list[dict[str, Any]] = []

    def visit(node: ast.AST, held: tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)) and node is not func:
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            taken: list[str] = []
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None:
                    taken.append(attr)
                    acquires.append({"lock": attr, "line": node.lineno,
                                     "col": node.col_offset})
                    for holder in held:
                        lock_pairs.append(
                            {"held": holder, "acquired": attr,
                             "line": node.lineno,
                             "col": node.col_offset})
                visit(item.context_expr, held)
            inner = held + tuple(taken)
            for stmt in node.body:
                visit(stmt, inner)
            return
        if isinstance(node, ast.Call):
            desc = call_desc(node)
            if desc is not None:
                calls.append(desc)
                for holder in held:
                    locked_calls.append({"held": holder, "call": desc})
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    body = func.body if isinstance(func.body, list) else [func.body]
    for stmt in body:
        visit(stmt, ())
    facts: dict[str, Any] = {
        "line": func.lineno, "col": func.col_offset,
        "calls": calls, "acquires": acquires,
        "lock_pairs": lock_pairs, "locked_calls": locked_calls,
    }
    if taint_extractor is not None:
        facts["taint"] = taint_extractor(source, func)
    return facts


def _collect_defs(source: SourceFile, summary: FileSummary,
                  taint_extractor: Callable | None) -> None:
    for node in source.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.functions[node.name] = _function_facts(
                source, node, taint_extractor)
        elif isinstance(node, ast.ClassDef):
            methods: list[str] = []
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    methods.append(item.name)
                    summary.functions[f"{node.name}.{item.name}"] = \
                        _function_facts(source, item, taint_extractor)
            summary.classes[node.name] = {
                "line": node.lineno,
                "methods": methods,
                "locks": _lock_attrs_of_class(source, node),
                "attr_types": _attr_types(node),
            }


def _collect_emitters(source: SourceFile,
                      summary: FileSummary) -> None:
    """Wire-document emitters: dict literals carrying a ``"kind"`` key.

    Only kinds that resolve to a string constant count (``"kind":
    self.kind`` is a payload field, not a document kind).  The owning
    class (when the literal sits inside a method) links the emitter to
    its ``from_dict`` parser for the schema diff.
    """

    def scan(node: ast.AST, owner: str | None) -> None:
        if isinstance(node, ast.ClassDef):
            for child in ast.iter_child_nodes(node):
                scan(child, node.name)
            return
        if isinstance(node, ast.Dict):
            kind: str | None = None
            fields: list[str] = []
            for key, value in zip(node.keys, node.values):
                name = _const_str(key, {})
                if name is None:
                    continue
                fields.append(name)
                if name == "kind":
                    kind = _const_str(value, summary.constants)
            if kind is not None:
                summary.emitters.append(
                    {"kind": kind, "fields": sorted(set(fields)),
                     "owner": owner, "line": node.lineno,
                     "col": node.col_offset})
        for child in ast.iter_child_nodes(node):
            scan(child, owner)

    for top in source.tree.body:
        scan(top, None)
    # from_dict parse keys, linked per class.
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for item in node.body:
            if not isinstance(item, ast.FunctionDef) \
                    or item.name != "from_dict":
                continue
            params = [a.arg for a in item.args.args if a.arg != "cls"]
            if not params:
                continue
            data = params[0]
            parsed: set[str] = set()
            for inner in ast.walk(item):
                if isinstance(inner, ast.Subscript) \
                        and isinstance(inner.value, ast.Name) \
                        and inner.value.id == data:
                    name = _const_str(inner.slice, {})
                    if name is not None:
                        parsed.add(name)
                elif isinstance(inner, ast.Call) \
                        and isinstance(inner.func, ast.Attribute) \
                        and inner.func.attr == "get" \
                        and isinstance(inner.func.value, ast.Name) \
                        and inner.func.value.id == data \
                        and inner.args:
                    name = _const_str(inner.args[0], {})
                    if name is not None:
                        parsed.add(name)
            info = summary.classes.setdefault(node.name, {})
            info["parses"] = sorted(parsed)
            info["parses_line"] = item.lineno


def summarize(source: SourceFile,
              taint_extractor: Callable | None = None) -> FileSummary:
    """Distill one parsed source into its :class:`FileSummary`.

    ``taint_extractor`` is injected by the runner (it lives in
    :mod:`repro.analysis.taint`) to keep this module free of checker
    specifics; ``None`` skips taint facts (graph-only consumers).
    """
    summary = FileSummary(path=source.path, module=source.module,
                          content_hash=source.content_hash)
    _collect_module_level(source, summary)
    _collect_registrations(source, summary)
    _collect_uses(source, summary)
    _collect_defs(source, summary, taint_extractor)
    _collect_emitters(source, summary)
    summary.noqa_lines = {
        str(line): sorted(codes)
        for line, codes in source.noqa_directives().items()}
    summary.hot_pragma = source.has_hot_pragma()
    return summary


# -- the whole-program model -------------------------------------------------


class ProgramModel:
    """Cross-module view the program checkers run against.

    Built from per-file summaries (fresh or cache-loaded) plus a lazy
    source loader: ``program.source(module)`` parses a file on demand
    (SCAR004 reads three modules' ASTs), ``program.text(module)``
    returns raw text without parsing (registry-name greps).
    """

    def __init__(self, summaries: Sequence[FileSummary], root: Path,
                 load_source: Callable[[str], SourceFile] | None = None
                 ) -> None:
        self.root = Path(root)
        self.summaries: dict[str, FileSummary] = {}
        for summary in summaries:
            self.summaries[summary.module] = summary
        self.modules: set[str] = set(self.summaries)
        self._sources: dict[str, SourceFile] = {}
        self._load = load_source
        self._import_graph: dict[str, set[str]] | None = None
        self._dependents: dict[str, set[str]] | None = None
        self._lock_closure: dict[str, frozenset[str]] | None = None

    # -- sources ----------------------------------------------------------

    def source(self, module: str) -> SourceFile | None:
        """Parsed source of ``module`` (lazy; ``None`` when absent)."""
        if module in self._sources:
            return self._sources[module]
        summary = self.summaries.get(module)
        if summary is None:
            return None
        if self._load is not None:
            loaded = self._load(module)
        else:
            loaded = SourceFile.load(summary.path)
        self._sources[module] = loaded
        return loaded

    def preload(self, module: str, source: SourceFile) -> None:
        """Adopt an already-parsed source (fresh-analysis reuse)."""
        self._sources[module] = source

    def text(self, module: str) -> str | None:
        """Raw text of ``module`` without forcing a parse."""
        source = self._sources.get(module)
        if source is not None:
            return source.text
        summary = self.summaries.get(module)
        if summary is None:
            return None
        return self.source(module).text if self._load is None \
            else self._load(module).text

    # -- import graph ------------------------------------------------------

    def import_graph(self) -> dict[str, set[str]]:
        """``module -> project modules it imports`` (direct edges)."""
        if self._import_graph is None:
            self._import_graph = {
                module: summary.project_imports(self.modules)
                for module, summary in self.summaries.items()}
        return self._import_graph

    def dependents(self, module: str) -> set[str]:
        """Transitive reverse-import closure (who must re-analyze)."""
        if self._dependents is None:
            reverse: dict[str, set[str]] = {m: set() for m in
                                            self.modules}
            for src, deps in self.import_graph().items():
                for dep in deps:
                    reverse.setdefault(dep, set()).add(src)
            self._dependents = reverse
        seen: set[str] = set()
        frontier = [module]
        while frontier:
            current = frontier.pop()
            for user in self._dependents.get(current, ()):
                if user not in seen:
                    seen.add(user)
                    frontier.append(user)
        seen.discard(module)
        return seen

    # -- symbol resolution -------------------------------------------------

    def resolve_export(self, module: str, name: str,
                       depth: int = 4) -> tuple[str, str] | None:
        """Chase ``name`` in ``module`` through re-export hops.

        Returns the defining ``(module, qualname)`` or ``None``.  One
        hop per ``from x import y`` level, bounded to stay cycle-safe.
        """
        summary = self.summaries.get(module)
        if summary is None or depth <= 0:
            return None
        if name in summary.functions or name in summary.classes:
            return module, name
        for target, orig, bound in summary.from_imports:
            if (bound or orig) != name:
                continue
            if f"{target}.{orig}" in self.modules:
                return None  # a module import, not a symbol
            resolved = self.resolve_export(target, orig, depth - 1)
            if resolved is not None:
                return resolved
        return None

    def canonical_symbol(self, module: str, name: str,
                         depth: int = 6) -> tuple[str, str | None]:
        """The defining ``(module, symbol)`` of a name, any-kind.

        Unlike :meth:`resolve_export` (functions/classes only, used
        for call resolution) this also treats module-level assignments
        as definitions and resolves submodule re-exports to
        ``(submodule, None)`` -- the identity SCAR009's liveness
        matching needs.  Unresolvable names canonicalize to
        themselves.
        """
        summary = self.summaries.get(module)
        if summary is None or depth <= 0:
            return module, name
        if name in summary.functions or name in summary.classes \
                or name in summary.assigns:
            return module, name
        for target, orig, bound in summary.from_imports:
            if (bound or orig) != name:
                continue
            if f"{target}.{orig}" in self.modules:
                return f"{target}.{orig}", None
            if target in self.modules:
                return self.canonical_symbol(target, orig, depth - 1)
            return target, orig  # external import, e.g. pathlib.Path
        if f"{module}.{name}" in self.modules:
            return f"{module}.{name}", None
        return module, name

    def _resolve_class(self, module: str,
                       typename: str) -> tuple[str, str] | None:
        """Find the defining module of a class named in ``module``."""
        resolved = self.resolve_export(module, typename)
        if resolved is not None:
            defining, qual = resolved
            summary = self.summaries.get(defining)
            if summary is not None and qual in summary.classes:
                return defining, qual
        return None

    def resolve_call(self, module: str, context_class: str | None,
                     desc: dict[str, Any]) -> str | None:
        """Resolve a call descriptor to a ``module:qualname`` id.

        Handles: ``self.m()`` (same class), ``self.attr.m()`` (via the
        class's attribute types), bare names (local defs, from-imports
        with one re-export hop), and ``alias.sub.f()`` dotted paths
        through import aliases and project submodules.  Constructor
        calls resolve to ``Class.__init__`` when it exists, else to the
        class marker ``module:Class``.
        """
        path = desc["path"]
        if desc.get("self"):
            if context_class is None:
                return None
            summary = self.summaries[module]
            cls = summary.classes.get(context_class, {})
            if len(path) == 1:
                qual = f"{context_class}.{path[0]}"
                if qual in summary.functions:
                    return f"{module}:{qual}"
                return None
            if len(path) == 2:
                typename = cls.get("attr_types", {}).get(path[0])
                if typename is None:
                    return None
                target = self._resolve_class(module, typename)
                if target is None:
                    return None
                t_module, t_class = target
                qual = f"{t_class}.{path[1]}"
                if qual in self.summaries[t_module].functions:
                    return f"{t_module}:{qual}"
            return None
        return self._resolve_dotted(module, path)

    def _resolve_dotted(self, module: str,
                        path: list[str]) -> str | None:
        summary = self.summaries.get(module)
        if summary is None:
            return None
        head = path[0]
        # Local definition?
        if head in summary.functions and len(path) == 1:
            return f"{module}:{head}"
        if head in summary.classes:
            return self._class_target(module, head, path[1:])
        # From-import of a symbol (one re-export hop)?
        resolved = self.resolve_export(module, head)
        if resolved is not None:
            r_module, r_qual = resolved
            if r_module != module or r_qual != head:
                return self._qual_target(r_module, [r_qual] + path[1:])
        # Import alias / module path: walk into project submodules.
        target = summary.imports.get(head)
        if target is None:
            for t, orig, bound in summary.from_imports:
                if (bound or orig) == head \
                        and f"{t}.{orig}" in self.modules:
                    target = f"{t}.{orig}"
                    break
        if target is None:
            return None
        rest = list(path[1:])
        while rest and f"{target}.{rest[0]}" in self.modules:
            target = f"{target}.{rest[0]}"
            rest.pop(0)
        if not rest:
            return None
        return self._qual_target(target, rest)

    def _qual_target(self, module: str, path: list[str]) -> str | None:
        summary = self.summaries.get(module)
        if summary is None:
            return None
        head = path[0]
        if head in summary.classes:
            return self._class_target(module, head, path[1:])
        if head in summary.functions and len(path) == 1:
            return f"{module}:{head}"
        resolved = self.resolve_export(module, head)
        if resolved is not None and (resolved != (module, head)):
            return self._qual_target(resolved[0],
                                     [resolved[1]] + path[1:])
        return None

    def _class_target(self, module: str, cls: str,
                      rest: list[str]) -> str | None:
        summary = self.summaries[module]
        if not rest:
            init = f"{cls}.__init__"
            if init in summary.functions:
                return f"{module}:{init}"
            return f"{module}:{cls}"
        qual = f"{cls}.{rest[0]}"
        if len(rest) == 1 and qual in summary.functions:
            return f"{module}:{qual}"
        return None

    # -- function iteration ------------------------------------------------

    def functions(self) -> Iterator[tuple[str, str, str | None,
                                          dict[str, Any]]]:
        """Every function: ``(id, module, class or None, facts)``."""
        for module in sorted(self.summaries):
            summary = self.summaries[module]
            for qualname in sorted(summary.functions):
                cls = qualname.split(".")[0] if "." in qualname else None
                yield (f"{module}:{qualname}", module, cls,
                       summary.functions[qualname])

    def function_facts(self, func_id: str) -> dict[str, Any] | None:
        module, _, qualname = func_id.partition(":")
        summary = self.summaries.get(module)
        if summary is None:
            return None
        return summary.functions.get(qualname)

    # -- lock closure ------------------------------------------------------

    def lock_id(self, module: str, cls: str, attr: str) -> str:
        """Stable identity of one class's lock (``module.Class.attr``)."""
        return f"{module}.{cls}.{attr}"

    def class_locks(self, module: str, cls: str) -> dict[str, bool]:
        summary = self.summaries.get(module)
        if summary is None:
            return {}
        return summary.classes.get(cls, {}).get("locks", {})

    def lock_closure(self) -> dict[str, frozenset[str]]:
        """``function id -> locks it may acquire`` (transitive).

        Direct acquisitions are ``with self.<lock>:`` statements whose
        attribute is a declared lock of the function's class; closure
        propagates through resolved calls to a fixpoint.
        """
        if self._lock_closure is not None:
            return self._lock_closure
        direct: dict[str, set[str]] = {}
        edges: dict[str, set[str]] = {}
        for func_id, module, cls, facts in self.functions():
            locks = self.class_locks(module, cls) if cls else {}
            direct[func_id] = {
                self.lock_id(module, cls, entry["lock"])
                for entry in facts.get("acquires", ())
                if cls and entry["lock"] in locks}
            edges[func_id] = set()
            for desc in facts.get("calls", ()):
                target = self.resolve_call(module, cls, desc)
                if target is not None:
                    edges[func_id].add(target)
        closure = {f: set(locks) for f, locks in direct.items()}
        changed = True
        while changed:
            changed = False
            for func_id, callees in edges.items():
                mine = closure[func_id]
                before = len(mine)
                for callee in callees:
                    mine.update(closure.get(callee, ()))
                if len(mine) != before:
                    changed = True
        self._lock_closure = {f: frozenset(locks)
                              for f, locks in closure.items()}
        return self._lock_closure
