"""SCAR002: no nondeterminism sources in the bit-identity kernel paths.

The engine, the sweep layer, the scenario generator and the simulation
layer promise bit-identical results across reruns, worker counts and
processes (golden tests, resumable stores, the cross-replica cache and
the warm-vs-cold replay parity contract all gate on it).  Three things silently break that promise:

* module-level ``random.*`` functions (the process-wide RNG; its state
  depends on import order and other callers) -- seeded
  ``random.Random(seed)`` streams are the sanctioned alternative;
* wall-clock reads (``time.time``/``time.time_ns``,
  ``datetime.now``/``utcnow``/``today``) leaking into results
  (``time.monotonic``/``perf_counter`` stay legal: they feed perf
  measurements that are documented as non-identity);
* iterating a bare ``set`` literal: string hashes are randomized per
  process, so the iteration order is not reproducible.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import (
    Checker,
    Finding,
    SourceFile,
    register_checker,
)

#: Modules where bit-identical results are gated.
_SCOPE = ("repro.engine", "repro.sweep", "repro.workloads.generator",
          "repro.sim")

#: The only sanctioned attributes of the ``random`` module: seeded
#: generator construction, and the Random class used in annotations.
_RANDOM_OK = frozenset({"Random"})

_TIME_BANNED = frozenset({"time", "time_ns"})
_DATETIME_BANNED = frozenset({"now", "utcnow", "today"})


def _in_scope(module: str) -> bool:
    return any(module == prefix or module.startswith(prefix + ".")
               for prefix in _SCOPE)


def _is_datetime_owner(node: ast.expr) -> bool:
    """``datetime`` / ``date`` / ``datetime.datetime`` receivers."""
    if isinstance(node, ast.Name):
        return node.id in ("datetime", "date")
    if isinstance(node, ast.Attribute):
        return node.attr in ("datetime", "date")
    return False


@register_checker
class DeterminismChecker(Checker):
    code = "SCAR002"
    name = "determinism"
    description = ("kernel/sweep paths must not use the module-level "
                   "random functions, wall-clock reads or bare-set-"
                   "literal iteration")

    def applies_to(self, source: SourceFile) -> bool:
        return _in_scope(source.module)

    def check(self, source: SourceFile) -> Iterable[Finding]:
        return list(self._walk(source, source.tree))

    def _walk(self, source: SourceFile,
              tree: ast.Module) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import(source, node)
            elif isinstance(node, ast.Attribute):
                yield from self._check_attribute(source, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)) \
                    and isinstance(node.iter, ast.Set):
                yield source.finding(
                    self.code,
                    "iteration over a bare set literal is order-"
                    "nondeterministic (hash randomization); sort it or "
                    "use a tuple", node.iter)
            elif isinstance(node, ast.comprehension) \
                    and isinstance(node.iter, ast.Set):
                yield source.finding(
                    self.code,
                    "comprehension over a bare set literal is order-"
                    "nondeterministic (hash randomization); sort it or "
                    "use a tuple", node.iter)

    def _check_import(self, source: SourceFile,
                      node: ast.ImportFrom) -> Iterator[Finding]:
        if node.module == "random":
            for alias in node.names:
                if alias.name not in _RANDOM_OK:
                    yield source.finding(
                        self.code,
                        f"`from random import {alias.name}` pulls in the "
                        f"process-wide RNG; use a seeded random.Random "
                        f"stream", node)
        elif node.module == "time":
            for alias in node.names:
                if alias.name in _TIME_BANNED:
                    yield source.finding(
                        self.code,
                        f"`from time import {alias.name}` reads the wall "
                        f"clock; results must not depend on it", node)

    def _check_attribute(self, source: SourceFile,
                         node: ast.Attribute) -> Iterator[Finding]:
        owner = node.value
        if isinstance(owner, ast.Name) and owner.id == "random" \
                and node.attr not in _RANDOM_OK:
            yield source.finding(
                self.code,
                f"`random.{node.attr}` uses the process-wide RNG; use a "
                f"seeded random.Random stream", node)
        elif isinstance(owner, ast.Name) and owner.id == "time" \
                and node.attr in _TIME_BANNED:
            yield source.finding(
                self.code,
                f"`time.{node.attr}` reads the wall clock; results must "
                f"not depend on it", node)
        elif node.attr in _DATETIME_BANNED \
                and _is_datetime_owner(owner):
            yield source.finding(
                self.code,
                f"`datetime.{node.attr}` reads the wall clock; results "
                f"must not depend on it", node)
