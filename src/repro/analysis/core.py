"""Static-analysis framework: findings, sources, the checker registry.

A *checker* is a small `ast`-based analysis pass guarding one project
invariant (lock discipline, determinism, wire contracts, ...).  Each
checker owns one stable code (``SCAR001``, ``SCAR002``, ...); a
:class:`Finding` pins a violation to a file/line and a finding can be
suppressed in place with a ``# scar: noqa[CODE]`` comment on the
offending line.

Checkers come in two flavours:

* per-file checkers implement :meth:`Checker.check` and run once per
  :class:`SourceFile` they :meth:`apply to <Checker.applies_to>`;
* project checkers implement :meth:`Checker.check_project` and run once
  over the whole file set (cross-file invariants, e.g. the
  exception-to-wire-code table).

New checkers subclass :class:`Checker`, pick the next free ``SCARnnn``
code and register with :func:`register_checker`; the runner
(:mod:`repro.analysis.runner`) discovers them through the registry.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.errors import AnalysisError, ConfigError

#: ``# scar: noqa[SCAR001]`` / ``# scar: noqa[SCAR001,SCAR005]``.
_NOQA_RE = re.compile(r"#\s*scar:\s*noqa\[(?P<codes>[A-Z0-9,\s]+)\]")

#: A noqa *directive*: the whole comment is the suppression.  Orphan
#: detection (SCAR009) only counts these, so prose that merely mentions
#: the syntax (docs comments, fixture strings) never reads as a
#: suppression that suppresses nothing.
_NOQA_DIRECTIVE_RE = re.compile(
    r"^#\s*scar:\s*noqa\[(?P<codes>[A-Z0-9,\s]+)\]\s*$")

#: ``# scar: hot`` file pragma: opt this module into the hot-path
#: allocation lint (SCAR010).  Trailing prose is allowed.
_HOT_PRAGMA_RE = re.compile(r"^#\s*scar:\s*hot\b")

#: Stable checker-code shape; the registry enforces it.
_CODE_RE = re.compile(r"^SCAR\d{3}$")


@dataclass(frozen=True)
class Finding:
    """One violation of one checker's invariant, pinned to a line."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: " \
               f"{self.code} {self.message}"

    # Nested wire payload of the lint_report document (no envelope of
    # its own, like CandidatePoint inside a schedule_result).

    def to_dict(self) -> dict[str, Any]:
        return {"code": self.code, "message": self.message,
                "path": self.path, "line": self.line, "col": self.col}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Finding":
        try:
            return cls(code=data["code"], message=data["message"],
                       path=data["path"], line=data["line"],
                       col=data.get("col", 0))
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed finding: {exc}") from exc


def module_name_for(path: str | Path) -> str:
    """Dotted module name for a source path (``repro``-rooted).

    ``src/repro/service/http.py`` -> ``repro.service.http``; package
    ``__init__.py`` files name the package itself.  Files outside a
    ``repro`` tree fall back to their stem, so fixture snippets still
    get a usable module identity.
    """
    parts = list(Path(path).parts)
    name = Path(path).stem
    if "repro" in parts:
        start = len(parts) - 1 - parts[::-1].index("repro")
        dotted = [part for part in parts[start:-1]]
        if name != "__init__":
            dotted.append(name)
        return ".".join(dotted)
    return name


class SourceFile:
    """One parsed python source: path, module identity, AST, noqa map."""

    def __init__(self, path: str | Path, text: str,
                 module: str | None = None) -> None:
        self.path = str(path)
        self.text = text
        self.module = module if module is not None \
            else module_name_for(path)
        self.lines = text.splitlines()
        self._tree: ast.Module | None = None
        self._hash: str | None = None
        self._comments: dict[int, str] | None = None

    @classmethod
    def load(cls, path: str | Path) -> "SourceFile":
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(f"cannot read {path}: {exc}") from exc
        return cls(path, text)

    @property
    def tree(self) -> ast.Module:
        if self._tree is None:
            try:
                self._tree = ast.parse(self.text, filename=self.path)
            except SyntaxError as exc:
                raise AnalysisError(
                    f"cannot parse {self.path}: {exc}") from exc
        return self._tree

    def line(self, lineno: int) -> str:
        """1-indexed source line ('' when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def node_lines(self, node: ast.AST) -> str:
        """The source lines a node spans, joined (comments included)."""
        end = getattr(node, "end_lineno", node.lineno)
        return "\n".join(self.lines[node.lineno - 1:end])

    @property
    def content_hash(self) -> str:
        """SHA-256 of the source text (the incremental-cache key)."""
        if self._hash is None:
            self._hash = hashlib.sha256(
                self.text.encode("utf-8")).hexdigest()
        return self._hash

    def comments(self) -> dict[int, str]:
        """Real ``#`` comment tokens by line (tokenize-backed).

        Unlike a per-line regex, this never mistakes a ``#`` inside a
        string literal (fixture snippets, docstrings) for a comment.
        Token errors (the file may be unparsable) degrade to an empty
        map -- the parse error is reported elsewhere.
        """
        if self._comments is None:
            found: dict[int, str] = {}
            try:
                for token in tokenize.generate_tokens(
                        io.StringIO(self.text).readline):
                    if token.type == tokenize.COMMENT:
                        found[token.start[0]] = token.string
            except (tokenize.TokenError, IndentationError,
                    SyntaxError, ValueError):
                found = {}
            self._comments = found
        return self._comments

    def noqa_codes(self, lineno: int) -> frozenset[str]:
        """Checker codes suppressed on ``lineno`` (empty = none)."""
        match = _NOQA_RE.search(self.line(lineno))
        if match is None:
            return frozenset()
        return frozenset(code.strip()
                         for code in match.group("codes").split(",")
                         if code.strip())

    def noqa_directives(self) -> dict[int, frozenset[str]]:
        """Lines carrying a whole-comment noqa directive (for SCAR009).

        Only comment tokens that *are* the directive count; a comment
        that merely mentions the syntax is prose, not a suppression.
        """
        directives: dict[int, frozenset[str]] = {}
        for lineno, comment in self.comments().items():
            match = _NOQA_DIRECTIVE_RE.match(comment)
            if match is not None:
                directives[lineno] = frozenset(
                    code.strip()
                    for code in match.group("codes").split(",")
                    if code.strip())
        return directives

    def has_hot_pragma(self) -> bool:
        """True when a ``# scar: hot`` comment opts this file in."""
        return any(_HOT_PRAGMA_RE.match(comment)
                   for comment in self.comments().values())

    def finding(self, code: str, message: str,
                node: ast.AST | None = None, *,
                line: int = 1, col: int = 0) -> Finding:
        """Build a finding against this file (node pins line/col)."""
        if node is not None:
            line, col = node.lineno, node.col_offset
        return Finding(code=code, message=message, path=self.path,
                       line=line, col=col)


class Checker:
    """Base class of one invariant's analysis pass.

    Subclasses set ``code``/``name``/``description`` and implement
    :meth:`check` (per file), :meth:`check_program` (once over the
    whole-program model -- see :mod:`repro.analysis.graph`) or the
    legacy :meth:`check_project` (once over the materialized file
    set).  ``applies_to`` scopes per-file checkers to the modules
    whose invariant they guard.

    Per-file results are cacheable by content hash; program passes run
    every lint but read the (cached) per-file summaries, so prefer
    ``check_program`` over ``check_project`` -- the latter forces every
    file to be re-parsed even on warm incremental runs.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def applies_to(self, source: SourceFile) -> bool:
        return True

    def check(self, source: SourceFile) -> Iterable[Finding]:
        return ()

    def check_program(self, program: Any) -> Iterable[Finding]:
        """Whole-program pass over a :class:`~repro.analysis.graph.\
ProgramModel` (summaries always available, sources parsed lazily)."""
        return ()

    def check_project(self, sources: Sequence[SourceFile],
                      root: Path) -> Iterable[Finding]:
        return ()

    @classmethod
    def is_per_file(cls) -> bool:
        """True when this checker implements the per-file pass."""
        return cls.check is not Checker.check

    @classmethod
    def is_program(cls) -> bool:
        """True when this checker implements a whole-program pass."""
        return (cls.check_program is not Checker.check_program
                or cls.check_project is not Checker.check_project)


_CHECKERS: dict[str, type[Checker]] = {}


def register_checker(cls: type[Checker]) -> type[Checker]:
    """Register a checker class under its stable code (decorator)."""
    if not _CODE_RE.match(cls.code):
        raise AnalysisError(
            f"checker code must match SCARnnn, got {cls.code!r}")
    if cls.code in _CHECKERS:
        raise AnalysisError(
            f"checker code {cls.code} is already registered")
    _CHECKERS[cls.code] = cls
    return cls


def checker_codes() -> tuple[str, ...]:
    """Registered checker codes, sorted."""
    return tuple(sorted(_CHECKERS))


def build_checkers(select: Sequence[str] | None = None,
                   ignore: Sequence[str] | None = None) -> list[Checker]:
    """Instantiate the selected checkers (unknown codes are errors)."""
    known = checker_codes()
    for given in list(select or []) + list(ignore or []):
        if given not in known:
            raise AnalysisError(
                f"unknown checker code {given!r}; known: {known}")
    codes = [code for code in known
             if (select is None or code in select)
             and (ignore is None or code not in ignore)]
    return [_CHECKERS[code]() for code in codes]
