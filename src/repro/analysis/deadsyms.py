"""SCAR009: dead symbols -- exports, registrations and suppressions.

Three closure properties over the whole program:

* every name a module lists in ``__all__`` is imported somewhere else
  in the checked tree (tests count: a public API consumed only by its
  tests is still alive);
* every ``@register_*("name")`` plugin name is reachable -- the quoted
  name appears in ``repro.cli`` or in a test module, so a user or a
  test can actually select it;
* every ``# scar: noqa[CODE]`` directive suppresses at least one
  finding (orphan suppressions rot: the violation was fixed but the
  opt-out stayed, silently disarming the checker for that line).

The first two need the cross-module symbol table and are implemented
here as a program pass; orphan detection needs the *findings* of the
same run, so the runner calls :func:`orphan_noqa_findings` after all
checkers ran but before suppression folding (the orphan finding is
itself suppressible -- a deliberate placeholder reads as suppressed,
not clean).

Both symbol checks degrade on partial lints: without any test module
in the checked set, "never imported" cannot be judged and the export
and registry checks are skipped.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.analysis.core import Checker, Finding, register_checker
from repro.analysis.graph import REGISTRARS

_CLI_MODULE = "repro.cli"


def _is_test_module(summary: Any) -> bool:
    parts = summary.path.replace("\\", "/").split("/")
    return ("tests" in parts
            or summary.module.startswith("test_")
            or summary.module == "conftest")


def _used_symbols(program: Any) -> set[tuple[str, str | None]]:
    """Canonical ``(defining module, symbol)`` pairs referenced
    anywhere -- symbol ``None`` means the module itself is imported.

    Every reference is resolved to where the symbol is actually
    defined (re-export chains chased), so ``from repro.core import
    Schedule`` keeps the package re-export *and* the defining
    ``repro.core.schedule`` entry alive at once.
    """
    used: set[tuple[str, str | None]] = set()
    for module in program.summaries:
        summary = program.summaries[module]
        for dep in summary.project_imports(program.modules):
            used.add((dep, None))
        module_bindings: dict[str, str] = dict(summary.imports)
        for target, orig, bound in summary.from_imports:
            if f"{target}.{orig}" in program.modules:
                if bound:
                    module_bindings[bound] = f"{target}.{orig}"
            elif bound:
                if target in program.modules:
                    used.add(program.canonical_symbol(target, orig))
                else:
                    used.add((target, orig))
        for path in summary.uses:
            target = module_bindings.get(path[0])
            if target is None:
                continue
            rest = list(path[1:])
            while rest and f"{target}.{rest[0]}" in program.modules:
                target = f"{target}.{rest[0]}"
                rest.pop(0)
                used.add((target, None))
            if rest and target != module \
                    and target in program.modules:
                used.add(program.canonical_symbol(target, rest[0]))
    return used


@register_checker
class DeadSymbolChecker(Checker):
    code = "SCAR009"
    name = "dead-symbols"
    description = ("__all__ exports are imported somewhere, "
                   "@register_* names are reachable from the CLI or "
                   "tests, and every # scar: noqa[CODE] suppresses "
                   "a real finding")

    def check_program(self, program: Any) -> Iterable[Finding]:
        if not any(_is_test_module(summary)
                   for summary in program.summaries.values()):
            return ()  # partial lint: liveness cannot be judged
        findings: list[Finding] = []
        findings.extend(self._dead_exports(program))
        findings.extend(self._dead_registrations(program))
        return findings

    def _dead_exports(self, program: Any) -> Iterable[Finding]:
        used = _used_symbols(program)
        for module in sorted(program.summaries):
            summary = program.summaries[module]
            if not summary.exports:
                continue
            for name in summary.exports:
                canonical = program.canonical_symbol(module, name)
                if (module, name) in used or canonical in used:
                    continue
                yield Finding(
                    code=self.code,
                    message=(f"{module}.__all__ exports {name!r} but "
                             f"nothing in the checked tree imports "
                             f"it"),
                    path=summary.path,
                    line=summary.exports_line or 1, col=0)

    def _dead_registrations(self, program: Any) -> Iterable[Finding]:
        reachable_texts: list[str] = []
        cli_text = program.text(_CLI_MODULE) \
            if _CLI_MODULE in program.modules else None
        if cli_text is None:
            return  # SCAR005-style degradation without the CLI
        reachable_texts.append(cli_text)
        for module in sorted(program.summaries):
            summary = program.summaries[module]
            if _is_test_module(summary):
                text = program.text(module)
                if text is not None:
                    reachable_texts.append(text)
        for module in sorted(program.summaries):
            summary = program.summaries[module]
            for registration in summary.registrations:
                name = registration["name"]
                label = REGISTRARS.get(registration["registrar"],
                                       "plugin")
                quoted = (f'"{name}"', f"'{name}'")
                if any(q in text for text in reachable_texts
                       for q in quoted):
                    continue
                yield Finding(
                    code=self.code,
                    message=(f"{label} {name!r} is registered but "
                             f"never named in repro.cli or any test; "
                             f"it is unreachable dead weight"),
                    path=summary.path, line=registration["line"],
                    col=registration["col"])


def orphan_noqa_findings(
        directives: dict[str, dict[int, frozenset[str]]],
        raw: Sequence[Finding],
        enabled_codes: Sequence[str]) -> list[Finding]:
    """Directives that suppress nothing (runner post-pass).

    ``directives`` maps each file path to its whole-comment noqa
    lines (from the cached summaries, so warm runs never re-tokenize
    clean files); ``raw`` are the run's findings *before* suppression
    folding.  A directive is judged only when every code it names was
    enabled this run -- a partial ``--select`` cannot prove a
    suppression dead.
    """
    if "SCAR009" not in enabled_codes:
        return []
    enabled = set(enabled_codes)
    hits: dict[tuple[str, int], set[str]] = {}
    for finding in raw:
        hits.setdefault((finding.path, finding.line),
                        set()).add(finding.code)
    orphans: list[Finding] = []
    for path in sorted(directives):
        for lineno, codes in sorted(directives[path].items()):
            if not codes or not codes.issubset(enabled):
                continue
            matched = hits.get((path, lineno), set())
            dead = sorted(codes - matched)
            if not dead:
                continue
            orphans.append(Finding(
                code="SCAR009",
                message=(f"orphan suppression: # scar: "
                         f"noqa[{','.join(dead)}] suppresses no "
                         f"finding on this line"),
                path=path, line=lineno, col=0))
    return orphans
