"""SCAR008: wire-document schemas only change with the golden file.

Every document the system puts on the wire is a dict literal carrying
a ``"kind"`` key (the envelope convention SCAR003 enforces).  This
checker extracts, per kind, the set of emitted fields (the ``to_dict``
/ ``to_document`` literal's keys) and the set of parsed fields (the
matching class's ``from_dict`` subscripts/`.get` reads) from the
program model, and diffs them against the checked-in golden
``analysis/schemas.json``.

Any difference -- a new kind, a removed kind, an added/removed field
-- is a finding until the golden is regenerated with ``scar lint
--update-schemas`` and the change lands in the same commit.  That
turns silent wire drift into an explicit, reviewable golden-file diff:
the schema file *is* the compatibility contract, exactly like a
recorded-fixture test, but derived statically so it also covers
emit-only documents (sweep_report, trace) that have no parser to
round-trip through.

Only project modules (``repro.*``) contribute schemas; fixture
snippets and test helpers never pollute the golden.  Partial lints
degrade gracefully: kinds whose recorded modules are outside the
checked set are skipped rather than reported stale.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.analysis.core import Checker, Finding, register_checker

#: Golden schema file, relative to the lint root.
GOLDEN_PATH = Path("analysis") / "schemas.json"

#: Version of the extraction itself (bump when the extractor's shape
#: changes and regenerate the golden).
SCHEMA_FORMAT = 1


def extract_schemas(program: Any) -> dict[str, dict[str, Any]]:
    """``{kind: {modules, fields, parses}}`` from the program model."""
    kinds: dict[str, dict[str, Any]] = {}
    for module in sorted(program.summaries):
        if not (module == "repro" or module.startswith("repro.")):
            continue
        summary = program.summaries[module]
        for emitter in summary.emitters:
            kind = emitter["kind"]
            entry = kinds.setdefault(
                kind, {"modules": [], "fields": [], "parses": []})
            if module not in entry["modules"]:
                entry["modules"].append(module)
            entry["fields"] = sorted(
                set(entry["fields"]) | set(emitter["fields"]))
            owner = emitter.get("owner")
            if owner:
                parses = summary.classes.get(owner, {}).get("parses")
                if parses:
                    entry["parses"] = sorted(
                        set(entry["parses"]) | set(parses))
    for entry in kinds.values():
        entry["modules"].sort()
    return kinds


def golden_document(program: Any,
                    note: str | None = None) -> dict[str, Any]:
    """The full golden document for the current program."""
    return {
        "format": SCHEMA_FORMAT,
        "note": note or ("regenerate with `scar lint "
                         "--update-schemas` and describe the wire "
                         "change in the commit"),
        "kinds": extract_schemas(program),
    }


def write_golden(program: Any, root: Path,
                 note: str | None = None) -> Path:
    """Regenerate the golden schema file under ``root``."""
    target = Path(root) / GOLDEN_PATH
    target.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(golden_document(program, note), indent=2,
                      sort_keys=True) + "\n"
    target.write_text(text, encoding="utf-8")
    return target


def load_golden(root: Path) -> dict[str, Any] | None:
    target = Path(root) / GOLDEN_PATH
    if not target.is_file():
        return None
    try:
        data = json.loads(target.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(data, dict) \
            or not isinstance(data.get("kinds"), dict):
        return None
    return data


@register_checker
class SchemaDriftChecker(Checker):
    code = "SCAR008"
    name = "wire-schema-drift"
    description = ("every kind's emitted/parsed field set matches the "
                   "golden analysis/schemas.json; wire changes require "
                   "an explicit `scar lint --update-schemas` golden "
                   "update in the same change")

    def check_program(self, program: Any) -> Iterable[Finding]:
        current = extract_schemas(program)
        if not current:
            return ()
        golden = load_golden(program.root)
        golden_rel = str(GOLDEN_PATH)
        if golden is None:
            site = self._emitter_site(program, sorted(current)[0])
            return [Finding(
                code=self.code,
                message=(f"wire kinds are emitted but {golden_rel} is "
                         f"missing or unreadable; generate it with "
                         f"`scar lint --update-schemas`"),
                path=site[0], line=site[1], col=site[2])]
        findings: list[Finding] = []
        known: dict[str, Any] = golden["kinds"]
        for kind in sorted(set(current) - set(known)):
            path, line, col = self._emitter_site(program, kind)
            findings.append(Finding(
                code=self.code,
                message=(f"new wire kind {kind!r} is not in "
                         f"{golden_rel}; run `scar lint "
                         f"--update-schemas` and commit the golden "
                         f"with a version note"), path=path,
                line=line, col=col))
        for kind in sorted(set(known) - set(current)):
            modules = known[kind].get("modules", [])
            if not any(module in program.modules
                       for module in modules):
                continue  # partial lint: the emitter was not checked
            findings.append(Finding(
                code=self.code,
                message=(f"golden {golden_rel} still lists wire kind "
                         f"{kind!r} but nothing emits it; run "
                         f"`scar lint --update-schemas`"),
                path=str(Path(program.root) / GOLDEN_PATH), line=1,
                col=0))
        for kind in sorted(set(current) & set(known)):
            findings.extend(self._diff_kind(program, kind,
                                            current[kind], known[kind],
                                            golden_rel))
        return findings

    def _diff_kind(self, program: Any, kind: str,
                   current: dict[str, Any], golden: dict[str, Any],
                   golden_rel: str) -> Iterable[Finding]:
        for facet in ("fields", "parses"):
            now = set(current.get(facet, ()))
            then = set(golden.get(facet, ()))
            if now == then:
                continue
            added = ", ".join(sorted(now - then)) or "-"
            removed = ", ".join(sorted(then - now)) or "-"
            what = "emits" if facet == "fields" else "parses"
            path, line, col = self._emitter_site(program, kind)
            yield Finding(
                code=self.code,
                message=(f"wire kind {kind!r} {what} drifted from "
                         f"{golden_rel} (added: {added}; removed: "
                         f"{removed}); update the golden with "
                         f"`scar lint --update-schemas` in the same "
                         f"change"), path=path, line=line, col=col)

    def _emitter_site(self, program: Any,
                      kind: str) -> tuple[str, int, int]:
        for module in sorted(program.summaries):
            summary = program.summaries[module]
            for emitter in summary.emitters:
                if emitter["kind"] == kind:
                    return (summary.path, emitter["line"],
                            emitter["col"])
        return (str(Path(program.root) / GOLDEN_PATH), 1, 0)
