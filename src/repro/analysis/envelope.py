"""SCAR003: wire documents carry the kind/version envelope, always.

Every top-level document class -- anything exposing a ``from_json``
entry point -- must speak the shared envelope protocol of
:mod:`repro.api.wire`:

* ``from_json`` parses through :func:`repro.api.wire.loads_document`
  (which wraps JSON errors as :class:`~repro.errors.ConfigError`),
  never bare ``json.loads``;
* ``from_dict`` validates the envelope via
  :func:`repro.api.wire.check_envelope` (the single implementation of
  kind/version checking);
* ``to_dict`` emits a ``"kind"`` key, so the document self-describes on
  the wire.

Nested payload types (candidate points, metrics rows) define
``to_dict``/``from_dict`` without ``from_json`` and are exempt: they
only ever travel inside an enveloped document.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import (
    Checker,
    Finding,
    SourceFile,
    register_checker,
)


def _methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {item.name: item for item in cls.body
            if isinstance(item, ast.FunctionDef)}


def _calls(fn: ast.FunctionDef, name: str) -> bool:
    """True when ``fn`` calls ``name`` (bare or as the last attribute)."""
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == name:
            return True
        if isinstance(func, ast.Attribute) and func.attr == name:
            return True
    return False


def _calls_json_loads(fn: ast.FunctionDef) -> ast.Call | None:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "loads" \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id == "json":
            return node
    return None


def _emits_kind_key(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and key.value == "kind":
                    return True
    return False


@register_checker
class WireEnvelopeChecker(Checker):
    code = "SCAR003"
    name = "wire-envelope"
    description = ("document classes (defining from_json) must parse "
                   "through wire.loads_document, validate with "
                   "wire.check_envelope and emit a \"kind\" key")

    def check(self, source: SourceFile) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(source, node))
        return findings

    def _check_class(self, source: SourceFile,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        methods = _methods(cls)
        from_json = methods.get("from_json")
        if from_json is None:
            return
        bare = _calls_json_loads(from_json)
        if bare is not None:
            yield source.finding(
                self.code,
                f"{cls.name}.from_json parses with bare json.loads; "
                f"route through wire.loads_document", bare)
        elif not _calls(from_json, "loads_document"):
            yield source.finding(
                self.code,
                f"{cls.name}.from_json must parse through "
                f"wire.loads_document", from_json)
        from_dict = methods.get("from_dict")
        if from_dict is None:
            yield source.finding(
                self.code,
                f"{cls.name} defines from_json but no from_dict to "
                f"validate the kind/version envelope", cls)
        elif not _calls(from_dict, "check_envelope"):
            yield source.finding(
                self.code,
                f"{cls.name}.from_dict must validate the kind/version "
                f"envelope via wire.check_envelope", from_dict)
        to_dict = methods.get("to_dict")
        if to_dict is not None and not _emits_kind_key(to_dict):
            yield source.finding(
                self.code,
                f"{cls.name}.to_dict must emit a \"kind\" envelope key",
                to_dict)
