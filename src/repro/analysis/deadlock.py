"""SCAR006: lock-order cycles in the inter-procedural lock graph.

SCAR001 proves each annotated field is only touched under its lock;
this checker proves the locks themselves cannot deadlock.  From the
program model it builds a directed *lock-order graph*: an edge
``A -> B`` means some execution path acquires lock ``B`` while already
holding lock ``A`` -- either directly (nested ``with self._a: ...
with self._b:``) or through a call chain (a method of one class,
holding its lock, calls into another class whose methods take their
own lock; the callee's transitive lock closure seeds the edge).  A
cycle in that graph is a potential deadlock: two threads entering the
cycle from different points block each other forever.

Lock identities are per-class attributes (``module.Class.attr``),
seeded from ``threading.Lock()``/``RLock()``/``Condition()``
assignments in ``__init__`` and from the existing ``# guarded by:``
annotations.  Self-edges are reported only for non-reentrant
``Lock``s (an ``RLock`` may legally re-enter); cross-lock cycles are
reported regardless of reentrancy -- reentrancy does not help when
two threads hold one lock each.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.analysis.core import Checker, Finding, register_checker
from repro.analysis.graph import call_key

#: An acquisition edge: (held lock id, acquired lock id) with the
#: source location and a human-readable route.
_Edge = tuple[str, str]


def _lock_order_edges(program: Any) -> dict[_Edge, dict[str, Any]]:
    """All held->acquired edges with one provenance site each."""
    closure = program.lock_closure()
    edges: dict[_Edge, dict[str, Any]] = {}

    def add(edge: _Edge, path: str, line: int, col: int,
            route: str) -> None:
        if edge not in edges:
            edges[edge] = {"path": path, "line": line, "col": col,
                           "route": route}

    for func_id, module, cls, facts in program.functions():
        if cls is None:
            continue
        locks = program.class_locks(module, cls)
        summary = program.summaries[module]

        def lock_of(attr: str) -> str | None:
            if attr in locks:
                return program.lock_id(module, cls, attr)
            return None

        for pair in facts.get("lock_pairs", ()):
            held = lock_of(pair["held"])
            acquired = lock_of(pair["acquired"])
            if held is None or acquired is None:
                continue
            add((held, acquired), summary.path, pair["line"],
                pair["col"],
                f"{func_id} nests `with self.{pair['acquired']}` "
                f"under `with self.{pair['held']}`")
        for locked in facts.get("locked_calls", ()):
            held = lock_of(locked["held"])
            if held is None:
                continue
            desc = locked["call"]
            target = program.resolve_call(module, cls, desc)
            if target is None:
                continue
            for acquired in sorted(closure.get(target, ())):
                add((held, acquired), summary.path, desc["line"],
                    desc["col"],
                    f"{func_id} holds self.{locked['held']} while "
                    f"calling {call_key(desc)}() -> {target}, which "
                    f"may acquire {acquired}")
    return edges


def _is_reentrant(program: Any, lock_id: str) -> bool:
    module, _, rest = lock_id.rpartition(".")
    module, _, cls = module.rpartition(".")
    return program.class_locks(module, cls).get(rest, True)


def _cycles(edges: dict[_Edge, dict[str, Any]]) -> list[list[str]]:
    """Strongly-connected components with >= 2 locks, as node lists."""
    graph: dict[str, set[str]] = {}
    for held, acquired in edges:
        graph.setdefault(held, set()).add(acquired)
        graph.setdefault(acquired, set())
    # Tarjan, iterative.
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    components: list[list[str]] = []

    for root in sorted(graph):
        if root in index:
            continue
        work: list[tuple[str, Any]] = [(root, iter(sorted(graph[root])))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph[child]))))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    components.append(sorted(component))
    return components


@register_checker
class LockOrderChecker(Checker):
    code = "SCAR006"
    name = "lock-order-deadlock"
    description = ("the inter-procedural lock-acquisition graph is "
                   "acyclic: no two locks are ever taken in opposite "
                   "orders, directly or through call chains")

    def check_program(self, program: Any) -> Iterable[Finding]:
        edges = _lock_order_edges(program)
        findings: list[Finding] = []
        # Self-deadlock: a plain Lock re-acquired along some path.
        for (held, acquired), site in sorted(edges.items()):
            if held == acquired \
                    and not _is_reentrant(program, held):
                findings.append(Finding(
                    code=self.code,
                    message=(f"non-reentrant lock {held} may be "
                             f"re-acquired while held: "
                             f"{site['route']}"),
                    path=site["path"], line=site["line"],
                    col=site["col"]))
        # Order cycles between distinct locks.
        for component in _cycles(edges):
            members = set(component)
            sites = sorted(
                (site["path"], site["line"], site["col"],
                 site["route"])
                for (held, acquired), site in edges.items()
                if held in members and acquired in members
                and held != acquired)
            if not sites:
                continue
            path, line, col, _ = sites[0]
            routes = "; ".join(route for _, _, _, route in sites[:3])
            findings.append(Finding(
                code=self.code,
                message=(f"lock-order cycle between "
                         f"{', '.join(component)}: {routes}"),
                path=path, line=line, col=col))
        return findings
