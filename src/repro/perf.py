"""Performance instrumentation: cache counters and run reports.

The evaluation acceleration layer (see DESIGN.md, "Evaluation
acceleration") surfaces its effect through two small value types:

* :class:`CacheStats` -- hit/miss counters for one memo table of
  :class:`repro.core.evalcache.EvalCache` (or any other memo that wants
  to report, e.g. the evolutionary fitness cache).
* :class:`PerfReport` -- one scheduling run's wall time, evaluation
  counts and merged cache statistics.  ``render()`` is the human-readable
  form printed by ``scar ... --perf-stats``; ``to_dict()`` is the
  machine-readable form written into ``benchmarks/BENCH_*.json``.

Both types merge associatively, so parallel workers can ship their local
counters back to the parent for a deterministic aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one memo table."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def record(self, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    def to_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "hit_rate": self.hit_rate}


def merge_stats(*stat_maps: dict[str, CacheStats]) -> dict[str, CacheStats]:
    """Merge per-table stat maps (parallel workers -> one aggregate)."""
    merged: dict[str, CacheStats] = {}
    for stats in stat_maps:
        for table, entry in stats.items():
            base = merged.setdefault(table, CacheStats())
            base.hits += entry.hits
            base.misses += entry.misses
            base.evictions += entry.evictions
    return merged


def diff_stats(after: dict[str, CacheStats],
               before: dict[str, CacheStats]) -> dict[str, CacheStats]:
    """Per-table counter delta ``after - before``.

    A long-lived :class:`repro.core.evalcache.EvalCache` (the warm
    simulation replay injects one, see :mod:`repro.sim`) accumulates
    counters across runs; the scheduler snapshots them before a run and
    diffs afterwards so each :class:`PerfReport` covers that run only.
    Tables absent from ``before`` count from zero; negative deltas never
    occur because counters are monotone.
    """
    delta: dict[str, CacheStats] = {}
    for table, entry in after.items():
        base = before.get(table, CacheStats())
        delta[table] = CacheStats(hits=entry.hits - base.hits,
                                  misses=entry.misses - base.misses,
                                  evictions=entry.evictions - base.evictions)
    return delta


@dataclass
class PerfReport:
    """Timing / evaluation statistics of one scheduling run.

    ``num_evaluated``          fully evaluated window candidates.
    ``num_windows``            time windows searched.
    ``jobs``                   worker processes used (1 = serial).
    ``cache``                  per-table cache counters, merged across
                               workers.
    ``num_segments``           segment costings the evaluator was asked
                               for (chain segments of every window that
                               missed the window memo).
    ``num_segments_recosted``  segment costings actually recomputed; the
                               difference is what the engine's
                               delta-evaluation fast path saved (see
                               :class:`repro.engine.CandidateEvaluator`).
    ``reports_dropped``        on an *aggregate* report: how many
                               per-run reports the capped log evicted
                               before this summary was taken (0 on a
                               single run's report).  Non-zero means the
                               summary undercounts.
    """

    wall_s: float = 0.0
    num_evaluated: int = 0
    num_windows: int = 0
    jobs: int = 1
    cache: dict[str, CacheStats] = field(default_factory=dict)
    num_segments: int = 0
    num_segments_recosted: int = 0
    reports_dropped: int = 0

    @property
    def evals_per_s(self) -> float:
        return self.num_evaluated / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def segment_reuse_rate(self) -> float:
        """Fraction of segment costings served by delta-evaluation."""
        if not self.num_segments:
            return 0.0
        return 1.0 - self.num_segments_recosted / self.num_segments

    def cache_table(self, table: str) -> CacheStats:
        """Counters of one memo table (zeroes when the table never ran)."""
        return self.cache.get(table, CacheStats())

    @property
    def overall_hit_rate(self) -> float:
        """Hit rate over every memo table combined."""
        hits = sum(s.hits for s in self.cache.values())
        lookups = sum(s.lookups for s in self.cache.values())
        return hits / lookups if lookups else 0.0

    def render(self) -> str:
        """Human-readable block for ``--perf-stats``."""
        lines = [
            f"wall time      {self.wall_s * 1e3:.1f} ms "
            f"({self.jobs} job{'s' if self.jobs != 1 else ''})",
            f"evaluations    {self.num_evaluated} window candidates over "
            f"{self.num_windows} windows ({self.evals_per_s:.0f} evals/s)",
        ]
        if self.reports_dropped:
            lines.append(
                f"dropped        {self.reports_dropped} per-run reports "
                f"evicted by the log cap (summary undercounts)")
        if self.num_segments:
            lines.append(
                f"segments       {self.num_segments_recosted}/"
                f"{self.num_segments} re-costed "
                f"({self.segment_reuse_rate:.1%} delta reuse)")
        for table in sorted(self.cache):
            stats = self.cache[table]
            lines.append(
                f"cache[{table:8s}] {stats.hits}/{stats.lookups} hits "
                f"({stats.hit_rate:.1%})")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Machine-readable form (the ``BENCH_*.json`` payload)."""
        return {
            "wall_s": self.wall_s,
            "num_evaluated": self.num_evaluated,
            "num_windows": self.num_windows,
            "jobs": self.jobs,
            "evals_per_s": self.evals_per_s,
            "num_segments": self.num_segments,
            "num_segments_recosted": self.num_segments_recosted,
            "segment_reuse_rate": self.segment_reuse_rate,
            "reports_dropped": self.reports_dropped,
            "cache": {table: stats.to_dict()
                      for table, stats in sorted(self.cache.items())},
        }


@dataclass
class TimingSummary:
    """Aggregate of wall-time samples (per-job queue / run times).

    The scheduling service feeds one sample per job into two of these
    (time spent ``QUEUED`` and time spent ``RUNNING``) and surfaces them
    through ``SchedulerService.perf_summary()``; merging is associative
    so summaries from several services can combine.
    """

    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def add(self, sample_s: float) -> None:
        self.count += 1
        self.total_s += sample_s
        self.max_s = max(self.max_s, sample_s)

    @classmethod
    def from_samples(cls, samples) -> "TimingSummary":
        summary = cls()
        for sample in samples:
            summary.add(sample)
        return summary

    def merge(self, other: "TimingSummary") -> "TimingSummary":
        """Combine two summaries (associative, like ``merge_stats``)."""
        return TimingSummary(count=self.count + other.count,
                             total_s=self.total_s + other.total_s,
                             max_s=max(self.max_s, other.max_s))

    def to_dict(self) -> dict:
        return {"count": self.count, "total_s": self.total_s,
                "mean_s": self.mean_s, "max_s": self.max_s}


def aggregate_reports(reports: list[PerfReport],
                      jobs: int | None = None,
                      reports_dropped: int = 0) -> PerfReport:
    """Merge perf reports of many runs into one summary.

    ``jobs`` defaults to the largest worker count any report used.
    ``reports_dropped`` records how many per-run reports the caller's
    capped log evicted before ``reports`` was taken (also summed with
    any drops the inputs themselves carry).
    """
    return PerfReport(
        wall_s=sum(p.wall_s for p in reports),
        num_evaluated=sum(p.num_evaluated for p in reports),
        num_windows=sum(p.num_windows for p in reports),
        jobs=jobs if jobs is not None
        else max((p.jobs for p in reports), default=1),
        cache=merge_stats(*(p.cache for p in reports)),
        num_segments=sum(p.num_segments for p in reports),
        num_segments_recosted=sum(p.num_segments_recosted
                                  for p in reports),
        reports_dropped=reports_dropped + sum(p.reports_dropped
                                              for p in reports),
    )


#: Process-wide PerfReport log.  Every ``SCARScheduler.schedule`` call
#: logs its report here, so front-ends (``scar ... --perf-stats``) can
#: aggregate runs made by experiment drivers that construct their
#: schedulers internally.  Capped so long-lived library processes that
#: never drain it cannot grow it without bound.
GLOBAL_PERF: list[PerfReport] = []

_GLOBAL_PERF_CAP = 4096

#: Reports evicted from :data:`GLOBAL_PERF` by the cap since the last
#: :func:`drain_perf_reports`.  Surfaced so long replays (thousands of
#: scheduling runs, see :mod:`repro.sim`) cannot silently truncate the
#: perf record; read it via :func:`global_reports_dropped`.
_GLOBAL_PERF_DROPPED = 0


def log_report(report: PerfReport) -> None:
    """Append to the process-wide perf log, evicting the oldest past cap."""
    global _GLOBAL_PERF_DROPPED
    GLOBAL_PERF.append(report)
    if len(GLOBAL_PERF) > _GLOBAL_PERF_CAP:
        excess = len(GLOBAL_PERF) - _GLOBAL_PERF_CAP
        del GLOBAL_PERF[:excess]
        _GLOBAL_PERF_DROPPED += excess


def global_reports_dropped() -> int:
    """Reports the cap evicted since the last drain."""
    return _GLOBAL_PERF_DROPPED


def drain_perf_reports() -> list[PerfReport]:
    """Return and clear the process-wide perf log (drop counter included)."""
    global _GLOBAL_PERF_DROPPED
    reports = list(GLOBAL_PERF)
    GLOBAL_PERF.clear()
    _GLOBAL_PERF_DROPPED = 0
    return reports
