"""The unified search-engine layer: one evaluation kernel for every policy.

This package is the single place the scheduling search is *executed*:

* :class:`CandidateEvaluator` -- the costing kernel every policy routes
  through (segment -> chain -> window -> schedule), with a
  delta-evaluation fast path that re-costs only chains whose cut
  boundaries or congestion moved, and per-evaluator statistics feeding
  :mod:`repro.perf`.
* :class:`WindowSearch` -- the per-window search strategy object: the
  paper's exhaustive (segmentation x placement) enumeration, generalized
  with a ``beam`` knob (``beam=None`` reproduces the exhaustive search
  bit-identically and stays the default for all paper figures).
* :mod:`~repro.engine.backends` -- pluggable execution backends
  (``serial``, ``process``) that fan (window, allocation) tasks out and
  merge outcomes bit-identically to a serial loop.
* :mod:`~repro.engine.provisioning` -- the PROV step as engine plumbing
  (expected shares + allocation enumeration) shared by every scheduler.
* :mod:`~repro.engine.candidates` -- the one candidate-point assembly
  used by both the in-process and wire-side Pareto constructions.
* :mod:`~repro.engine.tensorkernel` -- the optional numpy tensor kernel
  (:class:`TensorEvaluator`, ``eval_mode="vector"``): bit-identical to
  the scalar reference, an order of magnitude faster per chain costing.

Policies (:mod:`repro.api.policies`) stay pure strategy objects: they
describe *what* to search; this package owns *how* candidates are
evaluated, pruned and distributed.
"""

from repro.engine.backends import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    backend_names,
    register_backend,
    resolve_backend,
)
from repro.engine.candidates import assemble_candidate_points
from repro.engine.evaluator import (
    CandidateEvaluator,
    EvaluatorStats,
    chain_delta_key,
)
from repro.engine.provisioning import window_allocations, window_shares
from repro.engine.search import WindowSearch
from repro.engine.tensorkernel import (
    EVAL_MODES,
    TensorEvaluator,
    have_numpy,
    require_numpy,
)

__all__ = [
    "CandidateEvaluator",
    "EVAL_MODES",
    "EvaluatorStats",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "TensorEvaluator",
    "WindowSearch",
    "assemble_candidate_points",
    "backend_names",
    "chain_delta_key",
    "have_numpy",
    "register_backend",
    "require_numpy",
    "resolve_backend",
    "window_allocations",
    "window_shares",
]
