"""PROV plumbing: expected shares and allocation enumeration.

The provisioning step (Sec. IV-B) used to be wired privately into
:class:`~repro.core.scar.SCARScheduler`; the engine layer owns it now so
any scheduler (or a future standalone provisioning service) builds its
(window, allocation) task list the same way.  The arithmetic lives in
:mod:`repro.core.provisioner`; this module is the strategy-facing
surface over it.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.packing import WindowAssignment
from repro.core.provisioner import exhaustive_allocations, uniform_allocation
from repro.core.scoring import Objective
from repro.errors import SearchError

#: Valid ``provisioning`` modes, shared with request validation.
PROVISIONING_MODES = ("uniform", "exhaustive")


def window_shares(objective: Objective, window: WindowAssignment,
                  expected_lat: list[list[float]],
                  expected_en: list[list[float]]) -> dict[int, float]:
    """E(P_i) per model for the PROV rule, under the search objective.

    The latency-bound constraint (if any) applies to schedules, not to
    provisioning shares, so it is stripped here -- otherwise a heavy
    model's expected cost could score ``inf`` and break Eq. (2).
    """
    unbounded = replace(objective, latency_bound_s=None)
    shares: dict[int, float] = {}
    for model, start, stop in window.ranges:
        lat = sum(expected_lat[model][start:stop])
        energy = sum(expected_en[model][start:stop])
        shares[model] = unbounded.score_values(lat, energy)
    return shares


def window_allocations(window: WindowAssignment,
                       shares: dict[int, float], *, mode: str,
                       num_chiplets: int,
                       max_nodes_per_model: int | None = None,
                       limit: int | None = None) -> list[dict[int, int]]:
    """Node allocations to search for one window.

    ``mode="uniform"`` applies the Eq. (2) proportional rule (one
    allocation); ``mode="exhaustive"`` enumerates every composition of
    the chiplet budget up to ``limit`` (the Sec. V-E PROV ablation).
    """
    if mode == "uniform":
        return [uniform_allocation(window, shares, num_chiplets,
                                   max_nodes_per_model)]
    if mode == "exhaustive":
        return list(exhaustive_allocations(window, num_chiplets,
                                           max_nodes_per_model,
                                           limit=limit))
    raise SearchError(f"unknown provisioning mode {mode!r}; "
                      f"expected one of {PROVISIONING_MODES}")
