"""Candidate-population helpers shared by every result type.

The Pareto figures consume *assembled* candidate schedules: same-rank
window candidates combined across windows.  Both the in-process
:class:`~repro.core.scar.SCARResult` (full
:class:`~repro.core.sched_engine.WindowCandidate` objects) and the
wire-side :class:`~repro.api.request.ScheduleResult`
(:class:`~repro.api.wire.CandidatePoint` summaries) build their Pareto
points here, so the construction -- including the single-schedule
fallback for policies that collect no population -- cannot diverge
between the two.
"""

from __future__ import annotations

from typing import Any, Sequence

Point = tuple[float, float]
"""(latency_s, energy_j) of one candidate."""


def candidate_point(candidate: Any) -> Point:
    """(latency_s, energy_j) of one window candidate, either flavour.

    Accepts full :class:`~repro.core.sched_engine.WindowCandidate`
    objects (metrics nested under ``.metrics``) and wire-side
    :class:`~repro.api.wire.CandidatePoint` summaries (flat fields).
    """
    metrics = getattr(candidate, "metrics", None)
    if metrics is not None:
        return (metrics.latency_s, metrics.energy_j)
    return (candidate.latency_s, candidate.energy_j)


def assemble_candidate_points(
        window_candidates: Sequence[Sequence[Any]], *,
        fallback: Point) -> list[Point]:
    """(latency_s, energy_j) of assembled candidate schedules.

    Candidate schedules are formed by combining same-rank window
    candidates across windows after ranking each window by score (rank 0
    = the chosen schedule).  ``fallback`` is the single schedule point
    used when no population was collected (baseline policies, results
    rebuilt from a wire document without candidates).
    """
    if not window_candidates:
        return [fallback]
    ranked_per_window = [sorted(cands, key=lambda c: c.score)
                         for cands in window_candidates]
    depth = min(len(r) for r in ranked_per_window)
    points: list[Point] = []
    for rank in range(depth):
        latency = sum(candidate_point(r[rank])[0]
                      for r in ranked_per_window)
        energy = sum(candidate_point(r[rank])[1]
                     for r in ranked_per_window)
        points.append((latency, energy))
    return points
