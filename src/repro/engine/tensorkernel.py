"""Vectorized cost kernel: numpy tensor scoring of the Sec. III-E model.

:class:`TensorEvaluator` is a drop-in
:class:`~repro.engine.evaluator.CandidateEvaluator` whose chain costing
(:meth:`~repro.core.metrics.ScheduleEvaluator._chain_metrics`, the ~90%
hot path of every search) scores all mini-batch divisors x tile factors
of a chain in a handful of numpy passes instead of the scalar evaluator's
nested Python loops.  Everything above it -- delta costing, statistics,
the window memo, the search strategies -- is inherited unchanged, so
``num_evaluated`` / ``num_segments`` / ``num_segments_recosted`` report
identically in either mode.

Tensor layout
-------------

Per ``(model, chiplet class_key, io_hops)`` placement class, two
``float64`` tables of shape ``(D, L+1, L+1)`` (``D`` = divisors of the
instance batch, ``L`` = model layers) hold the compute latency/energy of
every ``(start, stop)`` sub-chain at every mini-batch, DRAM re-fetch
terms included; ``table[:, start, stop]`` is the all-divisors cost vector
of one segment, one strided read.  Per model, two ``(L, D)`` tables hold
the exact activation byte counts (integer ``minibatch * per_sample``
products, which :class:`~repro.workloads.layer.Layer` guarantees are
linear in batch) feeding the vectorized communication terms.

Exactness contract
------------------

The vector path is **bit-identical** to the scalar path, not
approximately equal, because every reduction preserves the scalar
evaluation order:

* Sub-chain tables are built with ``np.cumsum`` over an interleaved
  ``[compute_0, refetch_0, compute_1, refetch_1, ...]`` stream --
  ``cumsum`` accumulates strictly left-to-right, reproducing the scalar
  loop's ``((lat + compute_i) + refetch_i)`` association (a re-fetch term
  of ``0.0`` is an exact no-op on non-negative partial sums).  Plain
  ``np.sum`` is never used: its pairwise reduction changes association.
* Elementwise arithmetic mirrors :class:`~repro.mcm.comm.CommModel`
  operation-for-operation (same association, same operand order), and
  IEEE-754 elementwise ops are deterministic per element.
* The winning ``(minibatch, tile)`` is picked by a Python loop over the
  ``(D, T)`` latency grid in the scalar iteration order with the same
  ``1e-15`` improvement epsilon.

``benchmarks/test_kernel_vector.py`` gates both the parity and the
speedup; the randomized property tests in ``tests/test_tensorkernel.py``
assert ``ScheduleResult.same_payload`` across scenarios, batches and
topologies.  The scalar path remains the default everywhere
(``eval_mode=None`` resolves to ``"scalar"``) and keeps working without
numpy installed; ``eval_mode="vector"`` without numpy raises
:class:`~repro.errors.ConfigError` (wire code ``config_error``, HTTP 400
through the service).
"""

# scar: hot -- allocation-linted kernel module (SCAR010)
from __future__ import annotations

from repro.core.evalcache import EvalCache
from repro.core.metrics import _TILE_FACTORS, ModelWindowMetrics, _divisors
from repro.core.schedule import Segment
from repro.dataflow.database import LayerCostDatabase
from repro.engine.evaluator import CandidateEvaluator
from repro.errors import ConfigError
from repro.mcm.package import MCM
from repro.workloads.layer import Layer
from repro.workloads.model import Scenario

try:  # numpy is an optional extra; the scalar path never needs it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatch
    _np = None

#: The evaluator modes requests/sessions may name (`ScheduleRequest.eval_mode`).
EVAL_MODES = ("scalar", "vector")


def have_numpy() -> bool:
    """Whether the vector kernel's numpy dependency is importable."""
    return _np is not None


def require_numpy() -> None:
    """Raise a wire-stable :class:`ConfigError` when numpy is missing."""
    if _np is None:
        raise ConfigError(
            "eval_mode='vector' requires numpy, which is not installed; "
            "install the optional extra (pip install 'repro-scar[vector]') "
            "or use eval_mode='scalar'")


class _ModelTables:
    """Per-model mini-batch axis and exact activation byte tables.

    ``input_sizes`` / ``output_sizes`` are ``(L, D)`` float64 tables of
    exact ``minibatch * per_sample`` byte counts; ``input_ps`` /
    ``output_ps`` / ``weight_prefix`` keep the integer per-sample and
    prefix-summed weight bytes for the full-batch flow analysis (integer
    arithmetic, so prefix *differences* are exact).  ``num_mb_f`` and
    ``units_m1_f`` pre-convert the integer pipelining axes to float64
    (exact for these magnitudes) so the chain kernel pays no per-call
    int-to-float conversions.

    The communication terms are hoisted too: ``in_var_off`` /
    ``out_var_off`` / ``out_var_nop`` are ``sizes / bandwidth`` base
    serialization rows (the congestion factor is the only per-window
    multiplier left for the kernel), and ``in_e_off`` / ``out_e_off`` /
    ``out_e_nop`` memoize the hop-dependent energy rows per hop count --
    each built once with the exact scalar expression, so reads are free.
    """

    __slots__ = ("batch", "divisors", "num_mb_f", "units_m1_f",
                 "input_sizes", "output_sizes", "input_ps", "output_ps",
                 "weight_prefix", "in_var_off", "out_var_off",
                 "out_var_nop", "in_e_off", "out_e_off", "out_e_nop")

    def __init__(self, batch, divisors, num_mb_f, units_m1_f,
                 input_sizes, output_sizes, input_ps, output_ps,
                 weight_prefix, in_var_off, out_var_off, out_var_nop):
        self.batch = batch
        self.divisors = divisors
        self.num_mb_f = num_mb_f
        self.units_m1_f = units_m1_f
        self.input_sizes = input_sizes
        self.output_sizes = output_sizes
        self.input_ps = input_ps
        self.output_ps = output_ps
        self.weight_prefix = weight_prefix
        self.in_var_off = in_var_off
        self.out_var_off = out_var_off
        self.out_var_nop = out_var_nop
        self.in_e_off: dict[int, object] = {}
        self.out_e_off: dict[int, object] = {}
        self.out_e_nop: dict[int, object] = {}


class _PlaceTables:
    """Sub-chain compute cost tables of one (model, placement class)."""

    __slots__ = ("lat", "joule")

    def __init__(self, lat, joule):
        self.lat = lat
        self.joule = joule


class TensorEvaluator(CandidateEvaluator):
    """Delta-costing evaluator with the vectorized chain cost kernel.

    Construction requires numpy (:func:`require_numpy`); everything else
    -- caches, stats, the ``delta`` knob -- behaves exactly like the
    scalar :class:`~repro.engine.evaluator.CandidateEvaluator`.  Tensor
    tables are memoized per evaluator instance (pure functions of their
    ``(model, class_key, io_hops)`` key), as are the routes, segment
    statics and per-chain flow sets the kernel reads on every recost.
    """

    def __init__(self, scenario: Scenario, mcm: MCM,
                 database: LayerCostDatabase | None = None,
                 cache: EvalCache | None = None, *,
                 delta: bool = True) -> None:
        require_numpy()
        super().__init__(scenario, mcm, database, cache=cache, delta=delta)
        self._model_tables: dict[int, _ModelTables] = {}
        self._place_tables: dict[tuple, _PlaceTables] = {}
        self._place_by_node: dict[tuple[int, int], _PlaceTables] = {}
        self._hops_memo: dict[tuple[int, int], int] = {}
        self._route_memo: dict[tuple, tuple] = {}
        self._static_memo: dict[tuple, object] = {}
        self._entries_memo: dict[tuple, list] = {}
        self._layer_memo: dict[tuple[int, int, int], Layer] = {}
        self._tiles_f = _np.array(_TILE_FACTORS, dtype=_np.float64)
        # Precomputed serialization denominators; same one-product floats
        # the scalar CommModel recomputes per call.
        self._offchip_denom = mcm.offchip_gbps * 1e9
        self._nop_denom = mcm.nop_gbps * 1e9

    # -- tensor tables ----------------------------------------------------

    def _model_tables_for(self, model: int) -> _ModelTables:
        tables = self._model_tables.get(model)
        if tables is None:
            tables = self._build_model_tables(model)
            self._model_tables[model] = tables
        return tables

    def _build_model_tables(self, model: int) -> _ModelTables:
        instance = self.scenario[model]
        num_layers = len(instance.model)
        divisors = _divisors(instance.batch)
        mb = _np.array(divisors, dtype=_np.int64)
        num_mb = instance.batch // mb
        tiles = _np.array(_TILE_FACTORS, dtype=_np.int64)
        input_ps = [instance.model[i].with_batch(1).input_bytes
                    for i in range(num_layers)]
        output_ps = [instance.model[i].with_batch(1).output_bytes
                     for i in range(num_layers)]
        weight_prefix = [0]
        for i in range(num_layers):
            weight_prefix.append(weight_prefix[-1]
                                 + instance.model[i].weight_bytes)
        # Integer products (exact, < 2**53) cast to float64 exactly --
        # the same value the scalar path gets from float(layer.*_bytes).
        input_sizes = (_np.array(input_ps, dtype=_np.int64)[:, None]
                       * mb[None, :]).astype(_np.float64)
        output_sizes = (_np.array(output_ps, dtype=_np.int64)[:, None]
                        * mb[None, :]).astype(_np.float64)
        return _ModelTables(
            batch=instance.batch, divisors=divisors,
            num_mb_f=num_mb.astype(_np.float64),
            units_m1_f=(num_mb[:, None] * tiles[None, :] - 1)
            .astype(_np.float64),
            input_sizes=input_sizes, output_sizes=output_sizes,
            input_ps=input_ps, output_ps=output_ps,
            weight_prefix=weight_prefix,
            in_var_off=input_sizes / self._offchip_denom,
            out_var_off=output_sizes / self._offchip_denom,
            out_var_nop=output_sizes / self._nop_denom)

    def _place_tables_for(self, segment: Segment) -> _PlaceTables:
        assert segment.node is not None
        node_key = (segment.model, segment.node)
        tables = self._place_by_node.get(node_key)
        if tables is None:
            # Distinct nodes share tables whenever their chiplet class and
            # io distance agree; only the first touch per node pays the
            # class lookup.
            chiplet = self._chiplet_of(segment)
            class_key = (segment.model, chiplet.class_key,
                         self._io_hops[segment.node])
            tables = self._place_tables.get(class_key)
            if tables is None:
                tables = self._build_place_tables(segment.model, chiplet,
                                                  segment.node)
                self._place_tables[class_key] = tables
            self._place_by_node[node_key] = tables
        return tables

    def _build_place_tables(self, model: int, chiplet,
                            node: int) -> _PlaceTables:
        """All ``(divisor, start, stop)`` compute costs of one placement.

        Each ``start`` row comes from one ``np.cumsum`` over the
        interleaved per-layer ``[compute, refetch]`` stream, so every
        table entry carries the scalar loop's exact left-to-right
        association (see the module docstring).
        """
        instance = self.scenario[model]
        num_layers = len(instance.model)
        divisors = self._model_tables_for(model).divisors
        shape = (len(divisors), num_layers + 1, num_layers + 1)
        lat = _np.zeros(shape)
        joule = _np.zeros(shape)
        stream_lat = _np.empty(2 * num_layers)
        stream_j = _np.empty(2 * num_layers)
        # Shifted-stream matrices: row ``start`` holds the stream from
        # layer ``start`` on (zero-padded tail).  One cumsum(axis=1)
        # then accumulates every row left-to-right at once -- identical
        # association per row, 2 cumsum calls per divisor instead of 2L.
        # The pads beyond each row's live prefix never reach the tables.
        mat_lat = _np.zeros((num_layers, 2 * num_layers))
        mat_j = _np.zeros((num_layers, 2 * num_layers))
        clock = self.database.clock_hz
        for d, minibatch in enumerate(divisors):
            for idx in range(num_layers):
                cost = self.database.cost(
                    self._layer(model, idx, minibatch), chiplet)
                extra_lat = extra_j = 0.0
                if cost.dram_refetch_bytes > 0:
                    extra = self.comm.offchip(cost.dram_refetch_bytes,
                                              node)
                    extra_lat = extra.latency_s
                    extra_j = extra.energy_j
                stream_lat[2 * idx] = cost.latency_s(clock)
                stream_lat[2 * idx + 1] = extra_lat
                stream_j[2 * idx] = cost.energy_j()
                stream_j[2 * idx + 1] = extra_j
            for start in range(num_layers):
                live = 2 * (num_layers - start)
                mat_lat[start, :live] = stream_lat[2 * start:]
                mat_j[start, :live] = stream_j[2 * start:]
            odd_lat = _np.cumsum(mat_lat, axis=1)[:, 1::2]
            odd_j = _np.cumsum(mat_j, axis=1)[:, 1::2]
            for start in range(num_layers):
                lat[d, start, start + 1:] = \
                    odd_lat[start, :num_layers - start]
                joule[d, start, start + 1:] = \
                    odd_j[start, :num_layers - start]
        return _PlaceTables(lat=lat, joule=joule)

    # -- table-backed scalar hooks ----------------------------------------

    def _layer(self, model: int, index: int, batch: int) -> Layer:
        # Layers are frozen value objects; memoize the with_batch
        # rebuilds the table builders and residency checks ask for.
        key = (model, index, batch)
        layer = self._layer_memo.get(key)
        if layer is None:
            layer = super()._layer(model, index, batch)
            self._layer_memo[key] = layer
        return layer

    def _segment_weight_bytes(self, segment: Segment) -> float:
        # Integer prefix difference == the scalar integer sum, exactly.
        prefix = self._model_tables_for(segment.model).weight_prefix
        return float(prefix[segment.stop] - prefix[segment.start])

    def _segment_static(self, segment: Segment):
        # One plain-dict hop in front of the EvalCache lookup: the chain
        # kernel reads segment statics on every recost, and the shared
        # cache's LRU/statistics machinery costs more than the lookup.
        key = (segment.model, segment.start, segment.stop, segment.node)
        static = self._static_memo.get(key)
        if static is None:
            static = super()._segment_static(segment)
            self._static_memo[key] = static
        return static

    def _route_for(self, src: int | None, dst: int | None):
        """Memoized directed route of a flow (``traffic._route_of``)."""
        key = (src, dst)
        route = self._route_memo.get(key)
        if route is None:
            if src is None:
                assert dst is not None
                route = self.mcm.topology.route(self.mcm.nearest_io(dst),
                                                dst)
            elif dst is None:
                route = self.mcm.topology.route(src,
                                                self.mcm.nearest_io(src))
            else:
                route = self.mcm.topology.route(src, dst)
            self._route_memo[key] = route
        return route

    def _chain_entries(self, chain) -> list[tuple[tuple, tuple, bool]]:
        """One chain's positive-size flows as ``(key, route, offchip)``.

        Memoized on the chain tuple itself (segments are frozen value
        objects): the same chains recur across the thousands of window
        placements a search scores, and their flow sets are pure
        functions of the chain.
        """
        entries = self._entries_memo.get(chain)
        if entries is not None:
            return entries
        entries = []
        tables = self._model_tables_for(chain[0].model)
        prefix = tables.weight_prefix
        for pos, segment in enumerate(chain):
            node = segment.node
            if prefix[segment.stop] - prefix[segment.start]:
                entries.append(((None, node),
                                self._route_for(None, node), True))
            if pos == 0:
                if tables.input_ps[segment.start]:
                    entries.append(((None, node),
                                    self._route_for(None, node), True))
            else:
                prev = chain[pos - 1]
                if (prev.node != node
                        and tables.output_ps[prev.stop - 1]):
                    entries.append(((prev.node, node),
                                    self._route_for(prev.node, node),
                                    False))
        last = chain[-1]
        if tables.output_ps[last.stop - 1]:
            entries.append(((last.node, None),
                            self._route_for(last.node, None), True))
        self._entries_memo[chain] = entries
        return entries

    def _window_congestion(self, window) -> dict[tuple, float]:
        """Fused flow enumeration + contention analysis off the tables.

        Computes the exact factor map of the base
        :meth:`ScheduleEvaluator._window_congestion` /
        :func:`~repro.mcm.traffic.contention_factors` pair -- same
        integer link loads, same off-chip count, same float conversions
        -- without materializing :class:`~repro.mcm.traffic.Flow`
        objects or batched layers.  Zero-size and same-node flows are
        dropped up front: the scalar path assigns them factor ``1.0``,
        which every congestion read (``dict.get(key, 1.0)``) already
        defaults to, so the resulting factors are read-identical.
        """
        per_chain = [self._chain_entries(chain) for chain in window.chains]
        link_load: dict[tuple[int, int], int] = {}
        num_offchip = 0
        for entries in per_chain:
            for _, route, offchip in entries:
                if offchip:
                    num_offchip += 1
                for link in route:
                    link_load[link] = link_load.get(link, 0) + 1
        offchip_f = float(num_offchip)
        congestion: dict[tuple, float] = {}
        for entries in per_chain:
            for key, route, offchip in entries:
                heaviest = 0
                for link in route:
                    load = link_load[link]
                    if load > heaviest:
                        heaviest = load
                factor = float(heaviest) if route else 1.0
                if offchip and offchip_f > factor:
                    factor = offchip_f
                current = congestion.get(key, 1.0)
                congestion[key] = factor if factor > current else current
        return congestion

    # -- vectorized communication terms -----------------------------------

    def _e_off_rows(self, memo: dict, sizes, hops: int):
        """Off-chip energy ``(L, D)`` rows for one hop count, memoized.

        The build expression is :meth:`CommModel.offchip_parts` verbatim
        (same association and operand order), evaluated elementwise over
        the exact byte tables -- so each row read afterwards is the exact
        scalar energy at every mini-batch.
        """
        energy = memo.get(hops)
        if energy is None:
            energy = (sizes * self.comm.dram_pj_byte
                      + sizes * self.comm.nop_pj_byte * hops) * 1e-12
            memo[hops] = energy
        return energy

    def _e_nop_rows(self, tables: _ModelTables, hops: int):
        """NoP hand-off energy ``(L, D)`` rows for one hop count."""
        energy = tables.out_e_nop.get(hops)
        if energy is None:
            energy = (tables.output_sizes * self.comm.nop_pj_byte
                      * hops * 1e-12)
            tables.out_e_nop[hops] = energy
        return energy

    def _offchip_in_vec(self, tables: _ModelTables, idx: int, node: int,
                        congestion: float):
        """All-divisors off-chip fetch of layer ``idx`` inputs."""
        if tables.input_ps[idx] == 0:  # zero bytes => zero at every mb
            return None, 0.0, None
        hops = self._io_hops[node]
        base = tables.in_var_off[idx]
        variable = base * congestion if congestion > 1.0 else base
        fixed = hops * self.mcm.nop_hop_s + self.mcm.dram_latency_s
        energy = self._e_off_rows(tables.in_e_off, tables.input_sizes,
                                  hops)
        return variable, fixed, energy[idx]

    def _offchip_out_vec(self, tables: _ModelTables, idx: int, node: int,
                         congestion: float):
        """All-divisors off-chip write-back of layer ``idx`` outputs."""
        if tables.output_ps[idx] == 0:
            return None, 0.0, None
        hops = self._io_hops[node]
        base = tables.out_var_off[idx]
        variable = base * congestion if congestion > 1.0 else base
        fixed = hops * self.mcm.nop_hop_s + self.mcm.dram_latency_s
        energy = self._e_off_rows(tables.out_e_off, tables.output_sizes,
                                  hops)
        return variable, fixed, energy[idx]

    def _chiplet_out_vec(self, tables: _ModelTables, idx: int, src: int,
                         dst: int, congestion: float):
        """All-divisors NoP hand-off of layer ``idx`` outputs."""
        if src == dst or tables.output_ps[idx] == 0:
            return None, 0.0, None
        hops = self._hops_memo.get((src, dst))
        if hops is None:
            hops = self.mcm.topology.hops(src, dst)
            self._hops_memo[(src, dst)] = hops
        base = tables.out_var_nop[idx]
        variable = base * congestion if congestion > 1.0 else base
        fixed = hops * self.mcm.nop_hop_s
        energy = self._e_nop_rows(tables, hops)
        return variable, fixed, energy[idx]

    # -- the vectorized chain kernel --------------------------------------

    def _chain_metrics(self, chain: tuple[Segment, ...],
                       congestion: dict[tuple, float]) -> ModelWindowMetrics:
        """Score every (mini-batch, tile) candidate of one chain at once.

        Bit-identical override of the scalar
        :meth:`~repro.core.metrics.ScheduleEvaluator._chain_metrics` +
        ``_chain_at_minibatch`` pair; every arithmetic statement below
        mirrors a scalar statement in the same order (adding an exact
        ``0.0`` term is the only elision, a bitwise no-op on the
        non-negative quantities involved).
        """
        model = chain[0].model
        tables = self._model_tables_for(model)
        seg_costs = [self._segment_static(seg) for seg in chain]
        num_mb = tables.num_mb_f
        energy = _np.zeros(len(num_mb))
        scratch = _np.empty(len(num_mb))
        per_tile = []
        last = len(chain) - 1
        mul, add = _np.multiply, _np.add
        cget = congestion.get
        tiles = self._tiles_f
        for pos, (segment, static) in enumerate(zip(chain, seg_costs)):
            place = self._place_tables_for(segment)
            var = place.lat[:, segment.start, segment.stop]
            mul(place.joule[:, segment.start, segment.stop],
                num_mb, out=scratch)
            add(energy, scratch, out=energy)
            fix = 0.0

            # ip_com: off-chip input for the head, NoP hand-off otherwise.
            if pos == 0:
                v, f, e = self._offchip_in_vec(
                    tables, segment.start, segment.node,
                    cget((None, segment.node), 1.0))
            else:
                prev = chain[pos - 1]
                v, f, e = self._chiplet_out_vec(
                    tables, prev.stop - 1, prev.node, segment.node,
                    cget((prev.node, segment.node), 1.0))
            if v is not None:
                var = var + v
                fix = fix + f
                mul(e, num_mb, out=scratch)
                add(energy, scratch, out=energy)

            # op_com: only the tail segment writes results off-chip.
            if pos == last:
                v, f, e = self._offchip_out_vec(
                    tables, segment.stop - 1, segment.node,
                    cget((segment.node, None), 1.0))
                if v is not None:
                    var = var + v
                    fix = fix + f
                    mul(e, num_mb, out=scratch)
                    add(energy, scratch, out=energy)

            if static.resident:
                add(energy, static.weight_load_j, out=energy)
            else:
                var = var + static.weight_load_var_s
                fix = fix + static.weight_load_fix_s
                mul(static.weight_load_j, num_mb, out=scratch)
                add(energy, scratch, out=energy)
            per_tile.append(var[:, None] / tiles + fix)

        # In-place accumulation over our own buffers computes the exact
        # functional expressions (same ops, same operand order).
        fill = per_tile[0].copy()
        if last:
            maxseg = per_tile[0].copy()
            for arr in per_tile[1:]:
                add(fill, arr, out=fill)
                _np.maximum(maxseg, arr, out=maxseg)
        else:
            maxseg = per_tile[0]
        # One-time weight pre-load for resident segments; the generator
        # sum is the scalar path's own expression (same float), and
        # adding an exact zero would be a bitwise no-op anyway.
        preload = sum(s.weight_load_s for s in seg_costs if s.resident)
        if preload:
            add(fill, preload, out=fill)
        latency = tables.units_m1_f * maxseg
        add(latency, fill, out=latency)

        # Winner selection.  The scalar loop only ever settles on a
        # candidate within its 1e-15 epsilon of the global minimum, so
        # when exactly one candidate lies in that band the first-minimum
        # index (argmin) IS the scalar winner; only near-ties replay the
        # scalar iteration order (divisors ascending, tiles inner) with
        # the same improvement epsilon.
        flat = latency.ravel()
        best = int(flat.argmin())
        best_lat = flat[best].item()
        if int((flat <= best_lat + 1e-15).sum()) == 1:
            best_d, best_t = divmod(best, len(_TILE_FACTORS))
        else:
            best_lat = None
            best_d = best_t = 0
            for d, row in enumerate(latency.tolist()):
                for t, lat in enumerate(row):
                    if best_lat is None or lat < best_lat - 1e-15:
                        best_lat = lat
                        best_d = d
                        best_t = t
            assert best_lat is not None
        return ModelWindowMetrics(
            model=model, latency_s=best_lat,
            energy_j=energy[best_d].item(),
            minibatch=tables.divisors[best_d],
            tile_factor=_TILE_FACTORS[best_t],
            segment_latencies_s=tuple(arr[best_d, best_t].item()
                                      for arr in per_tile))
