"""Pluggable execution backends for the window search.

A backend runs the independent (window, allocation-index, allocation)
tasks of one scheduling run and returns *outcomes*::

    (window_index, alloc_index, best_candidate, evaluated_candidates,
     cache_stats_delta | None, evaluator_stats_delta | None)

The scheduler merges outcomes by ``(window_index, alloc_index)`` and
picks per-window winners by ``(score, alloc_index)`` -- exactly the
serial iteration order -- so **every backend is bit-identical**: the
backend choice changes wall-clock time, never a single result bit.

Two backends ship built in and new ones register by name::

    @register_backend("my_backend")
    def _make(jobs: int) -> ExecutionBackend: ...

``serial``    run tasks in-process against the run's shared evaluator
              (deltas stay ``None``: the parent's counters already hold
              everything).
``process``   fan tasks over a :class:`~concurrent.futures.\
ProcessPoolExecutor` of ``jobs`` workers; each worker owns one
              :class:`~repro.engine.evaluator.CandidateEvaluator` with a
              fresh cache and ships per-task cache/stat deltas back so
              the parent can merge exact aggregate counters.

Backends are selected per :class:`~repro.api.session.Session` (or per
request) rather than per scheduler -- see ``ScheduleRequest.backend``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Protocol, Sequence

from repro.core.packing import WindowAssignment
from repro.core.sched_engine import WindowCandidate
from repro.engine.evaluator import CandidateEvaluator, EvaluatorStats
from repro.errors import SearchError
from repro.perf import CacheStats
from repro.workloads.model import Scenario

#: One unit of independent search work: (window, alloc_index, alloc).
Task = tuple[WindowAssignment, int, dict[int, int]]

#: What a backend returns per task; see the module docstring.
TaskOutcome = tuple[int, int, WindowCandidate, list[WindowCandidate],
                    dict[str, CacheStats] | None, EvaluatorStats | None]


class ExecutionBackend(Protocol):
    """Strategy object executing a run's (window, alloc) tasks."""

    name: str
    #: Worker processes this backend may use (1 = in-process); what
    #: ``PerfReport.jobs`` reports for runs executed on this backend.
    jobs: int

    def run(self, scheduler: Any, scenario: Scenario,
            tasks: Sequence[Task], expected_lat: list[list[float]],
            evaluator: CandidateEvaluator) -> list[TaskOutcome]:
        """Execute ``tasks`` and return their outcomes (any order)."""
        ...  # pragma: no cover


_BACKENDS: dict[str, Callable[[int], "ExecutionBackend"]] = {}


def register_backend(name: str) -> Callable:
    """Register an execution-backend factory (``jobs -> backend``)."""

    def add(factory: Callable[[int], "ExecutionBackend"]):
        if name in _BACKENDS:
            raise SearchError(f"backend {name!r} is already registered")
        _BACKENDS[name] = factory
        return factory

    return add


def backend_names() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def resolve_backend(name: str | None, jobs: int) -> "ExecutionBackend":
    """Build the backend ``name`` (``None`` = infer from ``jobs``).

    The inference preserves the historical ``jobs`` contract: ``jobs=1``
    runs serially, ``jobs>1`` fans out over a process pool.
    """
    if name is None:
        name = "process" if jobs > 1 else "serial"
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise SearchError(
            f"unknown execution backend {name!r}; registered: "
            f"{backend_names()}") from None
    return factory(jobs)


class SerialBackend:
    """In-process execution against the run's shared evaluator."""

    name = "serial"
    jobs = 1

    def run(self, scheduler: Any, scenario: Scenario,
            tasks: Sequence[Task], expected_lat: list[list[float]],
            evaluator: CandidateEvaluator) -> list[TaskOutcome]:
        outcomes: list[TaskOutcome] = []
        for window, alloc_index, alloc in tasks:
            collected: list[WindowCandidate] = []
            best = scheduler._search_one_alloc(scenario, window, alloc,
                                               expected_lat, evaluator,
                                               collected)
            outcomes.append((window.index, alloc_index, best, collected,
                             None, None))
        return outcomes


class ProcessBackend:
    """Process-pool fan-out (the historical ``jobs=N`` behaviour).

    Each worker builds one evaluator (fresh cache) at startup and reuses
    it across the tasks it receives; per-task cache/stat deltas ride
    back with the results so the parent merges exact aggregate counters.
    Falls back to the serial path when a pool cannot help (one worker or
    at most one task), matching the pre-backend scheduler exactly.
    """

    name = "process"

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise SearchError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def run(self, scheduler: Any, scenario: Scenario,
            tasks: Sequence[Task], expected_lat: list[list[float]],
            evaluator: CandidateEvaluator) -> list[TaskOutcome]:
        if self.jobs == 1 or len(tasks) <= 1:
            return SerialBackend().run(scheduler, scenario, tasks,
                                       expected_lat, evaluator)
        workers = min(self.jobs, len(tasks))
        with ProcessPoolExecutor(
                max_workers=workers, initializer=_worker_init,
                initargs=(scheduler, scenario, expected_lat)) as pool:
            return list(pool.map(_worker_run, tasks))


@register_backend("serial")
def _make_serial(jobs: int) -> SerialBackend:
    return SerialBackend()


@register_backend("process")
def _make_process(jobs: int) -> ProcessBackend:
    return ProcessBackend(jobs)


# -- process-pool worker state (one evaluator per worker process) -----------

_WORKER: dict = {}


def _worker_init(scheduler: Any, scenario: Scenario,
                 expected_lat: list[list[float]]) -> None:
    _WORKER["scheduler"] = scheduler
    _WORKER["scenario"] = scenario
    _WORKER["expected_lat"] = expected_lat
    _WORKER["evaluator"] = scheduler.make_evaluator(scenario)


def _worker_run(task: Task) -> TaskOutcome:
    """Run one (window, alloc) task; return its outcome + stat deltas."""
    window, alloc_index, alloc = task
    scheduler = _WORKER["scheduler"]
    evaluator: CandidateEvaluator = _WORKER["evaluator"]
    cache_before = evaluator.cache.snapshot()
    stats_before = evaluator.stats.snapshot()
    collected: list[WindowCandidate] = []
    best = scheduler._search_one_alloc(_WORKER["scenario"], window, alloc,
                                       _WORKER["expected_lat"], evaluator,
                                       collected)
    cache_delta = {
        table: CacheStats(
            hits=stats.hits - cache_before.get(table, CacheStats()).hits,
            misses=(stats.misses
                    - cache_before.get(table, CacheStats()).misses),
            evictions=(stats.evictions
                       - cache_before.get(table, CacheStats()).evictions))
        for table, stats in evaluator.cache.snapshot().items()
    }
    return (window.index, alloc_index, best, collected, cache_delta,
            evaluator.stats.delta(stats_before))
