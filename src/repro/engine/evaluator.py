"""The candidate-costing kernel shared by every scheduler policy.

:class:`CandidateEvaluator` extends the Sec. III-E cost model
(:class:`~repro.core.metrics.ScheduleEvaluator`) with the engine-layer
concerns the searches used to hand-roll individually:

* **Delta evaluation.**  Search moves -- a GA cut mutation, the next
  placement in an enumeration -- typically change *one* model's chain
  and leave the sibling chains untouched.  A chain's metrics are a pure
  function of (chain structure, the congestion factors on the chain's
  own links), so the evaluator memoizes per-chain results in the
  ``chain`` table of the :class:`~repro.core.evalcache.EvalCache` and
  re-costs only the chains whose cut boundaries, placement or relevant
  congestion actually moved.  Results are bit-identical with the fast
  path on or off; only the amount of recomputation changes.
* **Per-evaluator statistics.**  :class:`EvaluatorStats` counts how many
  segment costings the searches asked for versus how many were actually
  recomputed; :class:`~repro.core.scar.SCARScheduler` merges these
  across workers into :class:`repro.perf.PerfReport` (``num_segments``,
  ``num_segments_recosted``), which is what the ``BENCH_engine.json``
  trajectory artifact gates on.

Anything accepting a :class:`~repro.core.metrics.ScheduleEvaluator`
accepts a :class:`CandidateEvaluator` -- it *is* one, plus the fast path
and the counters.
"""

# scar: hot -- allocation-linted kernel module (SCAR010)
from __future__ import annotations

from dataclasses import dataclass

from repro.core.evalcache import EvalCache
from repro.core.metrics import ModelWindowMetrics, ScheduleEvaluator
from repro.core.schedule import Segment
from repro.dataflow.database import LayerCostDatabase
from repro.mcm.package import MCM
from repro.workloads.model import Scenario


@dataclass
class EvaluatorStats:
    """Segment-costing counters of one :class:`CandidateEvaluator`.

    ``num_segments`` counts every segment of every chain the evaluator
    was asked to cost (windows served whole from the ``window`` memo are
    not asked again); ``num_segments_recosted`` counts the subset that
    actually ran the chain cost model.  The difference is the work the
    delta-evaluation fast path avoided.
    """

    num_segments: int = 0
    num_segments_recosted: int = 0

    @property
    def reuse_rate(self) -> float:
        """Fraction of segment costings served without recomputation."""
        if not self.num_segments:
            return 0.0
        return 1.0 - self.num_segments_recosted / self.num_segments

    def snapshot(self) -> "EvaluatorStats":
        return EvaluatorStats(
            num_segments=self.num_segments,
            num_segments_recosted=self.num_segments_recosted)

    def delta(self, before: "EvaluatorStats") -> "EvaluatorStats":
        """Counters accumulated since the ``before`` snapshot."""
        return EvaluatorStats(
            num_segments=self.num_segments - before.num_segments,
            num_segments_recosted=(self.num_segments_recosted
                                   - before.num_segments_recosted))

    def merge(self, other: "EvaluatorStats") -> None:
        """Fold another evaluator's counters in (parallel workers)."""
        self.num_segments += other.num_segments
        self.num_segments_recosted += other.num_segments_recosted


def chain_delta_key(chain: tuple[Segment, ...],
                    congestion: dict[tuple, float],
                    structure: tuple | None = None) -> tuple:
    """Exact memo key of one chain's metrics inside a window.

    The chain cost model reads, besides the chain itself, only the
    congestion factors of the chain's own transfers: the off-chip input
    of the head segment, each chiplet-to-chiplet hand-off, and the
    off-chip write-back of the tail.  Two windows whose remaining chains
    differ share this chain's metrics iff these factors coincide, so the
    key is (chain structure, those factors in chain order).  Callers
    that already hold the chain's structure tuple (the evaluator
    memoizes it per chain) can pass it to skip rebuilding it.
    """
    if structure is None:
        structure = tuple((seg.model, seg.start, seg.stop, seg.node)
                          for seg in chain)
    factors = [congestion.get((None, chain[0].node), 1.0)]
    for pos in range(1, len(chain)):
        factors.append(congestion.get(
            (chain[pos - 1].node, chain[pos].node), 1.0))
    factors.append(congestion.get((chain[-1].node, None), 1.0))
    return (structure, tuple(factors))


class CandidateEvaluator(ScheduleEvaluator):
    """Delta-costing schedule evaluator: the engine's evaluation kernel.

    Drop-in for :class:`~repro.core.metrics.ScheduleEvaluator` (it
    subclasses it), created once per scheduling run and shared across
    the run's window searches.  ``delta=False`` disables the chain-level
    fast path (every chain recomputes; used by the engine bench to
    measure what the fast path saves) -- results are bit-identical
    either way.
    """

    def __init__(self, scenario: Scenario, mcm: MCM,
                 database: LayerCostDatabase | None = None,
                 cache: EvalCache | None = None, *,
                 delta: bool = True) -> None:
        super().__init__(scenario, mcm, database, cache=cache)
        self.delta = delta
        self.stats = EvaluatorStats()
        # Chains (tuples of frozen segments) recur across thousands of
        # window placements; memoize their structure tuples so the delta
        # key build does one dict probe instead of a tuple rebuild.
        self._chain_structures: dict[tuple, tuple] = {}

    def _chain_metrics_cached(self, chain: tuple[Segment, ...],
                              congestion: dict[tuple, float]
                              ) -> ModelWindowMetrics:
        self.stats.num_segments += len(chain)

        def recost() -> ModelWindowMetrics:
            self.stats.num_segments_recosted += len(chain)
            return self._chain_metrics(chain, congestion)

        if not self.delta:
            return recost()
        structure = self._chain_structures.get(chain)
        if structure is None:
            structure = tuple((seg.model, seg.start, seg.stop, seg.node)
                              for seg in chain)
            self._chain_structures[chain] = structure
        return self.cache.lookup(
            "chain", chain_delta_key(chain, congestion, structure), recost)
