"""The per-window search strategy object.

:class:`WindowSearch` wraps the SCHED kernel
(:func:`repro.core.sched_engine.search_window`) as a configurable value
object, so schedulers hold *one* strategy instead of hard-wiring the
enumeration loop.  The single knob today is ``beam``:

``beam=None``  the paper's exhaustive enumeration over the
               heuristic-reduced (segmentation x placement) space --
               bit-identical to the historical engine and the default
               for every paper figure;
``beam=k``     keep only the ``k`` best proxy-scored segmentation
               combinations, splitting the window's evaluation budget
               across the survivors (deeper placement search per combo,
               smaller population).

Future strategies (vectorized scoring, learned pruning) land here as new
fields or sibling classes without touching any scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.budget import SearchBudget
from repro.core.metrics import ScheduleEvaluator
from repro.core.packing import WindowAssignment
from repro.core.scoring import Objective
from repro.core.sched_engine import WindowCandidate, search_window
from repro.core.segmentation import RankedSegmentation
from repro.errors import SearchError


@dataclass(frozen=True)
class WindowSearch:
    """Configurable (segmentation x placement) search for one window."""

    beam: int | None = None

    def __post_init__(self) -> None:
        if self.beam is not None and self.beam < 1:
            raise SearchError(
                f"beam must be None or >= 1, got {self.beam}")

    @property
    def exhaustive(self) -> bool:
        """True when this strategy reproduces the paper's exact search."""
        return self.beam is None

    def run(self, window: WindowAssignment,
            ranked_by_model: dict[int, list[RankedSegmentation]],
            evaluator: ScheduleEvaluator, objective: Objective,
            budget: SearchBudget,
            collect: list[WindowCandidate] | None = None
            ) -> WindowCandidate:
        """Search one window; same contract as :func:`search_window`."""
        return search_window(window, ranked_by_model, evaluator,
                             objective, budget, collect=collect,
                             beam=self.beam)
